"""Netlist-level static analysis over the *elaborated* design.

The AST linter (:mod:`repro.verilog.lint`) grades one module at a time,
pre-elaboration, so it cannot see instance port directions, resolved
parameter widths, or anything that crosses an instance boundary.  This
pass runs after elaboration on the flattened hierarchy: it builds a
signal-level dataflow graph (drivers -> readers, with port bindings as
edges between scopes) and runs the semantic checks the linter
structurally cannot:

=========================  =============================================
code                       meaning (severity)
=========================  =============================================
``comb-loop``              combinational feedback cycle (error)
``multi-driven``           conflicting drivers after elaboration (error)
``undriven``               signal read but never driven (warning)
``port-width-mismatch``    instance port narrower/wider than net (warning)
``x-prop``                 uninitialized register whose x reaches an
                           output (warning)
``fsm-unreachable-state``  FSM case arm unreachable from reset (warning)
``fsm-dead-transition``    transition out of an unreachable state (info)
``const-branch``           branch condition is always true/false (info)
``dead-logic``             driven signal that reaches no output or
                           observable effect (info)
=========================  =============================================

Error-severity findings gate evaluation: the pipeline fails such designs
at a structured ``analysis`` stage in milliseconds instead of letting a
comb loop spin the event-driven simulator to its iteration limit.
Warnings and infos are advisory; they flow to repair feedback, metrics
counters and the ``repro analyze`` report but never flip a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .elaborate import Design, ProcessSpec, Scope, Signal, lvalue_width
from .errors import AnalysisError, VerilogError
from .eval import collect_reads, eval_expr

#: finding code -> (severity, one-line description); the README table
#: and docs render from this, so keep descriptions short.
FINDING_CODES: dict[str, tuple[str, str]] = {
    "comb-loop": (
        "error", "combinational feedback cycle in the dataflow graph"),
    "multi-driven": (
        "error", "signal has conflicting drivers after elaboration"),
    "undriven": (
        "warning", "signal is read but has no driver in the hierarchy"),
    "port-width-mismatch": (
        "warning", "instance port connected to a different-width net"),
    "x-prop": (
        "warning", "uninitialized register never acquires a known value "
                   "and reaches an output"),
    "fsm-unreachable-state": (
        "warning", "FSM case arm unreachable from its reset/init states"),
    "fsm-dead-transition": (
        "info", "FSM transition that can never fire"),
    "const-branch": (
        "info", "branch condition is constant (always true/false)"),
    "dead-logic": (
        "info", "driven signal reaches no output or observable effect"),
}

_SEVERITY_RANK = {"error": 0, "warning": 1, "info": 2}


@dataclass(frozen=True)
class Finding:
    """One analysis finding with machine-readable coordinates."""

    code: str
    severity: str  # 'error' | 'warning' | 'info'
    message: str
    path: str = ""  # hierarchical signal/scope path, e.g. 'dut.state'
    line: int = 0

    def __str__(self) -> str:
        where = f" ({self.path})" if self.path else ""
        return f"line {self.line}: [{self.code}] {self.message}{where}"


def finding_to_dict(finding: Finding) -> dict:
    """Lossless wire form (see :mod:`repro.eval.export`)."""
    return {
        "code": finding.code,
        "severity": finding.severity,
        "message": finding.message,
        "path": finding.path,
        "line": finding.line,
    }


def finding_from_dict(row: dict) -> Finding:
    return Finding(
        code=str(row["code"]),
        severity=str(row.get("severity", "warning")),
        message=str(row.get("message", "")),
        path=str(row.get("path", "")),
        line=int(row.get("line", 0)),
    )


def error_findings(findings) -> list[Finding]:
    """The subset of ``findings`` that gates evaluation."""
    return [f for f in findings if f.severity == "error"]


# ----------------------------------------------------------------------
# Per-process extraction
# ----------------------------------------------------------------------
@dataclass
class _Assignment:
    """One resolved assignment: targets with bit spans, full dep set."""

    targets: list[tuple[Signal, tuple[int, int] | None]]
    deps: set  # Signals read (value + indices + control path)
    dep_names: set  # same, unresolved (for sensitivity restriction)
    line: int
    value: ast.Expr | None
    scope: Scope
    node_id: int  # id() of the Assign node (FSM containment tests)
    conditional: bool = False  # under an if/case/loop control path


@dataclass
class _Proc:
    """A classified process with its extracted assignments."""

    spec: ProcessSpec
    cls: str  # 'assign' | 'comb' | 'seq' | 'timed' | 'initial'
    sens: set | None  # explicit comb sensitivity names; None = @*
    assignments: list
    reads: set  # every Signal read anywhere in the process
    observed: set  # Signals read by $display/waits/delays (liveness sinks)


def _classify(spec: ProcessSpec) -> tuple[str, set | None]:
    if spec.kind == "assign":
        return "assign", None
    if spec.kind == "initial":
        return "initial", None
    body = spec.body
    if isinstance(body, ast.EventControl):
        if any(s.edge is not None for s in body.senses):
            return "seq", None
        if not body.senses:
            return "comb", None  # @*
        listed: set[str] = set()
        for sense in body.senses:
            collect_reads(sense.expr, listed)
        return "comb", listed
    return "timed", None  # e.g. ``always #5 clk = ~clk``


def _resolve_signals(names, scope: Scope) -> set:
    out = set()
    for name in names:
        resolved = scope.resolve(name)
        if resolved is not None and resolved[0] == "signal":
            out.add(resolved[1])
    return out


def _const_int(expr: ast.Expr | None, scope: Scope) -> int | None:
    """Constant value of ``expr`` using parameters only (None if not)."""
    if expr is None:
        return None
    if collect_reads(expr, set()) and not _params_only(expr, scope):
        return None
    try:
        return eval_expr(expr, scope).to_int()
    except (VerilogError, RecursionError):
        return None


def _params_only(expr: ast.Expr, scope: Scope) -> bool:
    for name in collect_reads(expr, set()):
        resolved = scope.resolve(name)
        if resolved is None or resolved[0] == "signal":
            return False
    return True


def _target_index_reads(target: ast.Expr | None, into: set) -> None:
    if isinstance(target, ast.BitSelect):
        _target_index_reads(target.base, into)
        collect_reads(target.index, into)
    elif isinstance(target, ast.PartSelect):
        _target_index_reads(target.base, into)
        collect_reads(target.msb, into)
        collect_reads(target.lsb, into)
    elif isinstance(target, ast.IndexedPartSelect):
        _target_index_reads(target.base, into)
        collect_reads(target.start, into)
        collect_reads(target.width, into)
    elif isinstance(target, ast.Concat):
        for part in target.parts:
            _target_index_reads(part, into)


def _target_spans(
    target: ast.Expr | None, scope: Scope
) -> list[tuple[Signal, tuple[int, int] | None]]:
    """Base signals written by an lvalue, with bit spans when static.

    A span of ``None`` means the written range could not be determined
    (dynamic index, or a memory word write); overlap checks treat it as
    unprovable rather than conflicting.
    """
    out: list[tuple[Signal, tuple[int, int] | None]] = []

    def base_signal(expr: ast.Expr | None) -> Signal | None:
        if isinstance(expr, ast.Identifier):
            resolved = scope.resolve(expr.name)
            if resolved is not None and resolved[0] == "signal":
                return resolved[1]
        return None

    if isinstance(target, ast.Identifier):
        signal = base_signal(target)
        if signal is not None:
            out.append((signal, (0, signal.width - 1)))
    elif isinstance(target, ast.BitSelect):
        signal = base_signal(target.base)
        if signal is not None:
            span = None
            if signal.memory is None:
                index = _const_int(target.index, scope)
                offset = signal.bit_offset(index) if index is not None else None
                if offset is not None:
                    span = (offset, offset)
            out.append((signal, span))
    elif isinstance(target, ast.PartSelect):
        signal = base_signal(target.base)
        if signal is not None:
            span = None
            msb = _const_int(target.msb, scope)
            lsb = _const_int(target.lsb, scope)
            if msb is not None and lsb is not None:
                hi, lo = signal.bit_offset(msb), signal.bit_offset(lsb)
                if hi is not None and lo is not None:
                    span = (min(hi, lo), max(hi, lo))
            out.append((signal, span))
    elif isinstance(target, ast.IndexedPartSelect):
        signal = base_signal(target.base)
        if signal is not None:
            out.append((signal, None))
    elif isinstance(target, ast.Concat):
        for part in target.parts:
            out.extend(_target_spans(part, scope))
    return out


def _extract_proc(spec: ProcessSpec) -> _Proc:
    cls, sens = _classify(spec)
    proc = _Proc(spec=spec, cls=cls, sens=None, assignments=[],
                 reads=set(), observed=set())
    scope = spec.scope
    if cls == "assign":
        tscope = spec.target_scope or scope
        dep_names: set[str] = set()
        collect_reads(spec.value, dep_names)
        index_names: set[str] = set()
        _target_index_reads(spec.target, index_names)
        deps = _resolve_signals(dep_names, scope)
        deps |= _resolve_signals(index_names, tscope)
        proc.assignments.append(_Assignment(
            targets=_target_spans(spec.target, tscope),
            deps=deps, dep_names=dep_names | index_names,
            line=spec.line, value=spec.value, scope=scope,
            node_id=id(spec),
        ))
        proc.reads = set(deps)
        return proc

    if sens is not None:
        proc.sens = _resolve_signals(sens, scope)
    all_names: set[str] = set()
    collect_reads(spec.body, all_names)
    proc.reads = _resolve_signals(all_names, scope)

    include_sense = cls != "comb"  # comb sensitivity handled via ``sens``

    def walk(stmt: ast.Stmt | None, controls: set[str]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk(child, controls)
        elif isinstance(stmt, ast.Assign):
            dep_names = set(controls)
            collect_reads(stmt.value, dep_names)
            _target_index_reads(stmt.target, dep_names)
            proc.assignments.append(_Assignment(
                targets=_target_spans(stmt.target, scope),
                deps=_resolve_signals(dep_names, scope),
                dep_names=dep_names,
                line=stmt.line, value=stmt.value, scope=scope,
                node_id=id(stmt), conditional=bool(controls),
            ))
        elif isinstance(stmt, ast.If):
            branched = controls | collect_reads(stmt.cond, set())
            walk(stmt.then_stmt, branched)
            walk(stmt.else_stmt, branched)
        elif isinstance(stmt, ast.Case):
            branched = set(controls)
            collect_reads(stmt.subject, branched)
            for item in stmt.items:
                for expr in item.exprs:
                    collect_reads(expr, branched)
            for item in stmt.items:
                walk(item.body, branched)
        elif isinstance(stmt, ast.For):
            walk(stmt.init, controls)
            branched = controls | collect_reads(stmt.cond, set())
            walk(stmt.body, branched)
            walk(stmt.step, branched)
        elif isinstance(stmt, ast.While):
            walk(stmt.body, controls | collect_reads(stmt.cond, set()))
        elif isinstance(stmt, ast.Repeat):
            walk(stmt.body, controls | collect_reads(stmt.count, set()))
        elif isinstance(stmt, ast.Forever):
            walk(stmt.body, controls)
        elif isinstance(stmt, ast.DelayStmt):
            delays = collect_reads(stmt.delay, set()) if stmt.delay else set()
            proc.observed |= _resolve_signals(delays, scope)
            walk(stmt.body, controls | delays)
        elif isinstance(stmt, ast.EventControl):
            senses: set[str] = set()
            for sense in stmt.senses:
                collect_reads(sense.expr, senses)
            if include_sense:
                controls = controls | senses
            walk(stmt.body, controls)
        elif isinstance(stmt, ast.Wait):
            conds = collect_reads(stmt.cond, set())
            proc.observed |= _resolve_signals(conds, scope)
            walk(stmt.body, controls | conds)
        elif isinstance(stmt, (ast.SysTaskCall, ast.TaskCall)):
            args: set[str] = set()
            for arg in stmt.args:
                collect_reads(arg, args)
            proc.observed |= _resolve_signals(args, scope)

    walk(spec.body, set())
    return proc


# ----------------------------------------------------------------------
# Dataflow graph
# ----------------------------------------------------------------------
class DataflowGraph:
    """Signal-level driver->reader graph over the flat hierarchy."""

    def __init__(self, design: Design, unit: ast.SourceUnit):
        self.design = design
        self.unit = unit
        self.procs = [_extract_proc(spec) for spec in design.processes]
        #: full dep edges: reader-side adjacency dep -> {targets}
        self.forward: dict[Signal, set] = {}
        #: combinational-only adjacency (loop detection)
        self.comb: dict[Signal, set] = {}
        #: line of the driver that created a comb edge, per target
        self.comb_lines: dict[Signal, int] = {}
        #: Signal -> list[(proc, assignment)]
        self.drivers: dict[Signal, list] = {}
        #: Signal -> first reading line (diagnostics)
        self.read_lines: dict[Signal, int] = {}
        top = unit.module(design.top)
        root = design.scopes.get("")
        self.top_inputs: set = set()
        self.top_outputs: set = set()
        if top is not None and root is not None:
            for port in top.ports:
                signal = root.signals.get(port.name)
                if signal is None:
                    continue
                if port.direction == "output":
                    self.top_outputs.add(signal)
                else:
                    self.top_inputs.add(signal)
        self._build()

    def _build(self) -> None:
        for proc in self.procs:
            for signal in proc.reads | proc.observed:
                self.read_lines.setdefault(signal, proc.spec.line)
            comb = proc.cls in ("assign", "comb")
            local: dict[Signal, set] = {}
            for assignment in proc.assignments:
                deps = assignment.deps
                if comb:
                    comb_deps = deps
                    if proc.sens is not None:  # explicit sensitivity list
                        comb_deps = deps & proc.sens
                    resolved = set()
                    for dep in comb_deps:
                        resolved |= local.get(dep, {dep})
                else:
                    resolved = None
                for target, _span in assignment.targets:
                    self.drivers.setdefault(target, []).append(
                        (proc, assignment)
                    )
                    for dep in deps:
                        self.forward.setdefault(dep, set()).add(target)
                    if comb and resolved is not None:
                        for dep in resolved:
                            self.comb.setdefault(dep, set()).add(target)
                        self.comb_lines.setdefault(target, assignment.line)
                        # blocking substitution: later reads of this
                        # target inside the block see its deps, not a
                        # self-edge (``s = 0; if (c) s = s + 1;``).  An
                        # unconditional whole-width write replaces the
                        # dep set; a conditional or partial write may
                        # keep the earlier value, so the sets merge.
                        whole = any(
                            t is target and span == (0, target.width - 1)
                            for t, span in assignment.targets
                        )
                        if whole and not assignment.conditional:
                            local[target] = set(resolved)
                        else:
                            local[target] = (
                                local.get(target, set()) | resolved
                            )

    # ------------------------------------------------------------------
    def comb_sccs(self) -> list[list]:
        """Strongly-connected components of the comb subgraph (iterative
        Tarjan); only cycles — SCCs of size > 1 or with a self-edge."""
        adj = self.comb
        nodes = set(adj)
        for targets in adj.values():
            nodes |= targets
        index: dict = {}
        low: dict = {}
        on_stack: set = set()
        stack: list = []
        counter = [0]
        cycles: list[list] = []
        for root in nodes:
            if root in index:
                continue
            work = [(root, iter(sorted(adj.get(root, ()),
                                       key=lambda s: s.name)))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(adj.get(succ, ()),
                                               key=lambda s: s.name)))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    component = []
                    while True:
                        item = stack.pop()
                        on_stack.discard(item)
                        component.append(item)
                        if item is node:
                            break
                    if len(component) > 1 or (
                        component[0] in adj.get(component[0], set())
                    ):
                        cycles.append(component)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return cycles

    def forward_closure(self, seeds) -> set:
        """All signals reachable (as readers) from ``seeds``."""
        seen = set(seeds)
        frontier = list(seeds)
        while frontier:
            node = frontier.pop()
            for succ in self.forward.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def backward_closure(self, seeds) -> set:
        """All signals some seed transitively depends on."""
        preds: dict[Signal, set] = {}
        for proc in self.procs:
            for assignment in proc.assignments:
                for target, _span in assignment.targets:
                    preds.setdefault(target, set()).update(assignment.deps)
        seen = set(seeds)
        frontier = list(seeds)
        while frontier:
            node = frontier.pop()
            for pred in preds.get(node, ()):
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
        return seen


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def _check_comb_loops(graph: DataflowGraph) -> list[Finding]:
    findings = []
    for component in graph.comb_sccs():
        names = sorted(signal.name for signal in component)
        lines = [
            graph.comb_lines[signal]
            for signal in component
            if signal in graph.comb_lines
        ]
        line = min(lines) if lines else 0
        findings.append(Finding(
            code="comb-loop",
            severity="error",
            message="combinational loop through " + " -> ".join(names),
            path=names[0],
            line=line,
        ))
    return findings


def _spans_conflict(spans: list) -> bool:
    """Do any two written bit ranges provably overlap?

    ``None`` spans (dynamic indices, memory words) are unprovable and
    never conflict; disjoint constant slices (``assign y[0]=..; assign
    y[1]=..;``) are legal multi-driver style.
    """
    known = [span for span in spans if span is not None]
    for i, (lo_a, hi_a) in enumerate(known):
        for lo_b, hi_b in known[i + 1:]:
            if lo_a <= hi_b and lo_b <= hi_a:
                return True
    return False


def _check_drivers(graph: DataflowGraph) -> list[Finding]:
    findings = []
    for signal in sorted(graph.drivers, key=lambda s: s.name):
        if signal.memory is not None:
            continue
        entries = graph.drivers[signal]
        assigns = [(p, a) for p, a in entries if p.cls == "assign"]
        always = [(p, a) for p, a in entries
                  if p.cls in ("comb", "seq", "timed")]
        line = min(a.line for _p, a in entries)
        if assigns and always:
            findings.append(Finding(
                code="multi-driven", severity="error",
                message=f"'{signal.name}' driven by both a continuous "
                        f"assignment and an always process",
                path=signal.name, line=line,
            ))
            continue
        if len(assigns) > 1:
            spans = [
                span for _p, a in assigns
                for target, span in a.targets if target is signal
            ]
            if _spans_conflict(spans):
                findings.append(Finding(
                    code="multi-driven", severity="error",
                    message=f"'{signal.name}' driven by "
                            f"{len(assigns)} continuous assignments "
                            f"with overlapping bits",
                    path=signal.name, line=line,
                ))
        distinct_procs = {id(p.spec) for p, _a in always}
        if len(distinct_procs) > 1:
            findings.append(Finding(
                code="multi-driven", severity="warning",
                message=f"'{signal.name}' assigned from "
                        f"{len(distinct_procs)} always processes",
                path=signal.name, line=line,
            ))
    return findings


def _check_undriven(graph: DataflowGraph) -> list[Finding]:
    findings = []
    readers = set(graph.read_lines)
    for signal in sorted(readers, key=lambda s: s.name):
        if signal in graph.drivers or signal in graph.top_inputs:
            continue
        findings.append(Finding(
            code="undriven", severity="warning",
            message=f"'{signal.name}' is read but never driven",
            path=signal.name,
            line=graph.read_lines.get(signal, 0),
        ))
    return findings


def _static_expr_width(expr: ast.Expr | None, scope: Scope) -> int | None:
    """Conservative self-determined width of an rvalue (None = unknown)."""
    if isinstance(expr, ast.Number):
        return expr.width if expr.sized else None
    if isinstance(expr, ast.Identifier):
        resolved = scope.resolve(expr.name)
        if resolved is not None and resolved[0] == "signal":
            signal = resolved[1]
            return None if signal.memory is not None else signal.width
        return None  # parameters keep bare-decimal laxness
    if isinstance(expr, ast.Concat):
        total = 0
        for part in expr.parts:
            width = _static_expr_width(part, scope)
            if width is None:
                return None
            total += width
        return total
    if isinstance(expr, ast.Replicate):
        count = _const_int(expr.count, scope)
        inner = _static_expr_width(expr.value, scope)
        if count is None or inner is None:
            return None
        return count * inner
    if isinstance(expr, ast.BitSelect):
        base = expr.base
        if isinstance(base, ast.Identifier):
            resolved = scope.resolve(base.name)
            if (resolved is not None and resolved[0] == "signal"
                    and resolved[1].memory is not None):
                return resolved[1].width  # memory word select
        return 1
    if isinstance(expr, ast.PartSelect):
        msb = _const_int(expr.msb, scope)
        lsb = _const_int(expr.lsb, scope)
        if msb is None or lsb is None:
            return None
        return abs(msb - lsb) + 1
    if isinstance(expr, ast.IndexedPartSelect):
        return _const_int(expr.width, scope)
    return None  # operators: context-determined, no static claim


def _check_port_widths(graph: DataflowGraph) -> list[Finding]:
    findings = []
    for proc in graph.procs:
        spec = proc.spec
        if spec.kind != "assign" or spec.target_scope is spec.scope:
            continue
        if spec.target_scope is None:
            continue
        try:
            lhs = lvalue_width(spec.target, spec.target_scope)
        except VerilogError:
            continue
        rhs = _static_expr_width(spec.value, spec.scope)
        if rhs is None or lhs == rhs:
            continue
        # the deeper scope is the child instance; its side is the port
        child_is_target = len(spec.target_scope.path) > len(spec.scope.path)
        port_width, net_width = (lhs, rhs) if child_is_target else (rhs, lhs)
        port_scope = spec.target_scope if child_is_target else spec.scope
        port_expr = spec.target if child_is_target else spec.value
        port_name = ""
        if isinstance(port_expr, ast.Identifier):
            resolved = port_scope.resolve(port_expr.name)
            if resolved is not None and resolved[0] == "signal":
                port_name = resolved[1].name
        findings.append(Finding(
            code="port-width-mismatch", severity="warning",
            message=f"{net_width}-bit expression connected to "
                    f"{port_width}-bit port '{port_name}'",
            path=port_name, line=spec.line,
        ))
    return findings


def _check_x_prop(graph: DataflowGraph, loop_members: set) -> list[Finding]:
    grounded = set(graph.top_inputs)
    for signal in graph.design.signals:
        if signal.memory is not None or signal.value.is_fully_known:
            grounded.add(signal)
    records = [
        (target, assignment.deps)
        for proc in graph.procs
        for assignment in proc.assignments
        for target, _span in assignment.targets
    ]
    changed = True
    while changed:
        changed = False
        for target, deps in records:
            if target not in grounded and deps <= grounded:
                grounded.add(target)
                changed = True
    feeds_output = graph.backward_closure(graph.top_outputs)
    findings = []
    for signal in sorted(graph.drivers, key=lambda s: s.name):
        if (signal in grounded or signal in loop_members
                or signal.kind not in ("reg", "integer")
                or signal not in feeds_output):
            continue
        line = min(a.line for _p, a in graph.drivers[signal])
        findings.append(Finding(
            code="x-prop", severity="warning",
            message=f"register '{signal.name}' is never reset or "
                    f"initialized; its x state can reach an output",
            path=signal.name, line=line,
        ))
    return findings


# ----------------------------------------------------------------------
# FSM extraction
# ----------------------------------------------------------------------
def _enum_consts(expr: ast.Expr | None, scope: Scope) -> set[int] | None:
    """Enumerate the constant values an rvalue can take (None=opaque)."""
    if isinstance(expr, ast.Ternary):
        a = _enum_consts(expr.if_true, scope)
        b = _enum_consts(expr.if_false, scope)
        if a is None or b is None:
            return None
        return a | b
    value = _const_int(expr, scope)
    return None if value is None else {value}


def _case_assign_ids(case: ast.Case) -> set[int]:
    ids: set[int] = set()

    def walk(stmt: ast.Stmt | None) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Assign):
            ids.add(id(stmt))
        elif isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk(child)
        elif isinstance(stmt, ast.If):
            walk(stmt.then_stmt)
            walk(stmt.else_stmt)
        elif isinstance(stmt, ast.Case):
            for item in stmt.items:
                walk(item.body)
        elif isinstance(stmt, ast.For):
            walk(stmt.init)
            walk(stmt.step)
            walk(stmt.body)
        elif isinstance(stmt, (ast.While, ast.Repeat, ast.Forever,
                               ast.DelayStmt, ast.EventControl, ast.Wait)):
            walk(stmt.body)

    for item in case.items:
        walk(item.body)
    return ids


def _arm_successors(
    body: ast.Stmt | None, next_signal: Signal, scope: Scope
) -> set[int] | None:
    """Constants assigned to ``next_signal`` within one case arm.

    Returns None when any assignment is opaque (non-enumerable rvalue),
    an empty set when the arm never assigns it (state holds).
    """
    successors: set[int] = set()
    opaque = False

    def walk(stmt: ast.Stmt | None) -> None:
        nonlocal opaque
        if stmt is None or opaque:
            return
        if isinstance(stmt, ast.Assign):
            if (isinstance(stmt.target, ast.Identifier)):
                resolved = scope.resolve(stmt.target.name)
                if (resolved is not None and resolved[0] == "signal"
                        and resolved[1] is next_signal):
                    consts = _enum_consts(stmt.value, scope)
                    if consts is None:
                        opaque = True
                    else:
                        successors.update(consts)
        elif isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk(child)
        elif isinstance(stmt, ast.If):
            walk(stmt.then_stmt)
            walk(stmt.else_stmt)
        elif isinstance(stmt, ast.Case):
            for item in stmt.items:
                walk(item.body)
        elif isinstance(stmt, (ast.While, ast.Repeat, ast.Forever,
                               ast.DelayStmt, ast.EventControl, ast.Wait)):
            walk(stmt.body)
        elif isinstance(stmt, ast.For):
            walk(stmt.init)
            walk(stmt.step)
            walk(stmt.body)

    walk(body)
    return None if opaque else successors


def _find_cases(stmt: ast.Stmt | None):
    if stmt is None:
        return
    if isinstance(stmt, ast.Case):
        yield stmt
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _find_cases(child)
    elif isinstance(stmt, ast.If):
        yield from _find_cases(stmt.then_stmt)
        yield from _find_cases(stmt.else_stmt)
    elif isinstance(stmt, ast.Case):
        for item in stmt.items:
            yield from _find_cases(item.body)
    elif isinstance(stmt, ast.For):
        yield from _find_cases(stmt.init)
        yield from _find_cases(stmt.step)
        yield from _find_cases(stmt.body)
    elif isinstance(stmt, (ast.While, ast.Repeat, ast.Forever,
                           ast.DelayStmt, ast.EventControl, ast.Wait)):
        yield from _find_cases(stmt.body)


def _check_fsms(graph: DataflowGraph) -> list[Finding]:
    findings: list[Finding] = []
    # seq-block links S <= N and seq const entries S <= CONST, with the
    # assign node ids so in-case transitions can be excluded from entries
    for proc in graph.procs:
        if proc.cls not in ("comb", "seq"):
            continue
        scope = proc.spec.scope
        for case in _find_cases(proc.spec.body):
            if case.kind != "case":
                continue
            subject = case.subject
            if not isinstance(subject, ast.Identifier):
                continue
            resolved = scope.resolve(subject.name)
            if resolved is None or resolved[0] != "signal":
                continue
            state = resolved[1]
            if state.memory is not None or state.width > 16:
                continue
            findings.extend(
                _analyze_fsm(graph, proc, case, state, scope)
            )
    return findings


def _analyze_fsm(
    graph: DataflowGraph, proc: _Proc, case: ast.Case,
    state: Signal, scope: Scope,
) -> list[Finding]:
    arm_values: dict[int, ast.CaseItem] = {}
    default_item: ast.CaseItem | None = None
    for item in case.items:
        if not item.exprs:
            default_item = item
            continue
        for expr in item.exprs:
            value = _const_int(expr, scope)
            if value is None:
                return []  # non-constant label: not an FSM case
            arm_values[value] = item

    if not arm_values:
        return []

    # Identify the next-state variable.  One-process FSM: the case sits
    # in the sequential block and assigns ``state`` directly.  Two-
    # process: a sequential assignment ``state <= next`` links them.
    in_case = _case_assign_ids(case)
    next_signal: Signal | None = None
    if proc.cls == "seq":
        next_signal = state
    else:
        for other in graph.procs:
            if other.cls != "seq":
                continue
            for assignment in other.assignments:
                if not any(t is state and span == (0, state.width - 1)
                           for t, span in assignment.targets):
                    continue
                if isinstance(assignment.value, ast.Identifier):
                    linked = other.spec.scope.resolve(assignment.value.name)
                    if linked is not None and linked[0] == "signal":
                        next_signal = linked[1]
        if next_signal is None:
            return []

    # Entry states: constants assigned to the state register in
    # sequential blocks *outside* this case (reset branches), plus a
    # known declaration init.  No anchor -> no reachability claims.
    entries: set[int] = set()
    for other in graph.procs:
        if other.cls not in ("seq", "initial"):
            continue
        for assignment in other.assignments:
            if assignment.node_id in in_case:
                continue
            if not any(t is state for t, _span in assignment.targets):
                continue
            consts = _enum_consts(assignment.value, other.spec.scope)
            if consts:
                entries.update(consts)
    init = state.value.to_int() if state.value.is_fully_known else None
    if init is not None:
        entries.add(init)
    if not entries:
        return []

    successors: dict[int, set[int]] = {}
    for value, item in arm_values.items():
        succ = _arm_successors(item.body, next_signal, scope)
        if succ is None:
            return []  # computed next state: no static claims
        successors[value] = succ if succ else {value}
    default_succ: set[int] | None = None
    if default_item is not None:
        default_succ = _arm_successors(default_item.body, next_signal, scope)
        if default_succ is None:
            return []

    def step(value: int) -> set[int]:
        if value in successors:
            return successors[value]
        if default_succ is not None:
            return default_succ if default_succ else {value}
        return {value}

    reachable: set[int] = set()
    frontier = list(entries)
    while frontier:
        value = frontier.pop()
        if value in reachable:
            continue
        reachable.add(value)
        frontier.extend(step(value))

    findings = []
    for value in sorted(arm_values):
        if value in reachable:
            continue
        item = arm_values[value]
        line = item.body.line if item.body is not None else case.line
        findings.append(Finding(
            code="fsm-unreachable-state", severity="warning",
            message=f"FSM state {value} of '{state.name}' is unreachable "
                    f"from reset/init state(s) "
                    f"{{{', '.join(str(v) for v in sorted(entries))}}}",
            path=state.name, line=line,
        ))
        for succ in sorted(successors[value]):
            findings.append(Finding(
                code="fsm-dead-transition", severity="info",
                message=f"transition {value} -> {succ} of "
                        f"'{state.name}' can never fire "
                        f"(source state unreachable)",
                path=state.name, line=line,
            ))
    return findings


# ----------------------------------------------------------------------
# Constant propagation
# ----------------------------------------------------------------------
def _constant_signals(graph: DataflowGraph) -> dict:
    """Signals driven by exactly one whole-width constant assign."""
    constants: dict = {}
    for signal, entries in graph.drivers.items():
        if len(entries) != 1 or signal.memory is not None:
            continue
        proc, assignment = entries[0]
        if proc.cls != "assign":
            continue
        if not any(t is signal and span == (0, signal.width - 1)
                   for t, span in assignment.targets):
            continue
        if assignment.value is None:
            continue
        if not _params_only(assignment.value, assignment.scope):
            continue
        try:
            value = eval_expr(assignment.value, assignment.scope)
        except (VerilogError, RecursionError):
            continue
        if value.is_fully_known:
            constants[signal] = value.resize(signal.width, signal.signed)
    return constants


def _branch_conditions(proc: _Proc):
    """(cond expr, line) for every If/Ternary condition in a process."""

    def exprs_of(expr: ast.Expr | None):
        if expr is None:
            return
        if isinstance(expr, ast.Ternary):
            yield (expr.cond, expr.line)
        for child in _child_exprs(expr):
            yield from exprs_of(child)

    def walk(stmt: ast.Stmt | None):
        if stmt is None:
            return
        if isinstance(stmt, ast.If):
            yield (stmt.cond, stmt.line)
            yield from exprs_of(stmt.cond)
            yield from walk(stmt.then_stmt)
            yield from walk(stmt.else_stmt)
        elif isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                yield from walk(child)
        elif isinstance(stmt, ast.Assign):
            yield from exprs_of(stmt.value)
        elif isinstance(stmt, ast.Case):
            for item in stmt.items:
                yield from walk(item.body)
        elif isinstance(stmt, ast.For):
            yield from walk(stmt.init)
            yield from walk(stmt.step)
            yield from walk(stmt.body)
        elif isinstance(stmt, (ast.While, ast.Repeat, ast.Forever,
                               ast.DelayStmt, ast.EventControl, ast.Wait)):
            yield from walk(stmt.body)

    spec = proc.spec
    if spec.kind == "assign":
        yield from exprs_of(spec.value)
    else:
        yield from walk(spec.body)


def _child_exprs(expr: ast.Expr):
    if isinstance(expr, ast.Unary):
        yield expr.operand
    elif isinstance(expr, ast.Binary):
        yield expr.lhs
        yield expr.rhs
    elif isinstance(expr, ast.Ternary):
        yield expr.cond
        yield expr.if_true
        yield expr.if_false
    elif isinstance(expr, (ast.Concat,)):
        yield from expr.parts
    elif isinstance(expr, ast.Replicate):
        yield expr.count
        yield expr.value
    elif isinstance(expr, ast.BitSelect):
        yield expr.base
        yield expr.index
    elif isinstance(expr, ast.PartSelect):
        yield expr.base
        yield expr.msb
        yield expr.lsb
    elif isinstance(expr, ast.IndexedPartSelect):
        yield expr.base
        yield expr.start
        yield expr.width
    elif isinstance(expr, (ast.FunctionCall, ast.SystemCall)):
        yield from expr.args


def _check_const_branches(graph: DataflowGraph) -> list[Finding]:
    constants = _constant_signals(graph)
    findings = []
    saved = [(signal, signal.value) for signal in constants]
    for signal, value in constants.items():
        signal.value = value
    try:
        for proc in graph.procs:
            scope = proc.spec.scope
            for cond, line in _branch_conditions(proc):
                if cond is None:
                    continue
                names = collect_reads(cond, set())
                if not names:
                    continue  # pure literals: not worth a finding
                usable = True
                for name in names:
                    resolved = scope.resolve(name)
                    if resolved is None:
                        usable = False
                    elif (resolved[0] == "signal"
                          and resolved[1] not in constants):
                        usable = False
                if not usable:
                    continue
                try:
                    value = eval_expr(cond, scope)
                except (VerilogError, RecursionError):
                    continue
                if not value.is_fully_known:
                    continue
                verdict = "true" if value.truthy() else "false"
                findings.append(Finding(
                    code="const-branch", severity="info",
                    message=f"branch condition is always {verdict}",
                    path=proc.spec.scope.path, line=line,
                ))
    finally:
        for signal, value in saved:
            signal.value = value
    return findings


def _check_dead_logic(graph: DataflowGraph) -> list[Finding]:
    if not graph.top_outputs:
        return []  # testbench-style top: everything is 'observation'
    sinks = set(graph.top_outputs)
    for proc in graph.procs:
        sinks |= proc.observed
    live = graph.backward_closure(sinks)
    findings = []
    for signal in sorted(graph.drivers, key=lambda s: s.name):
        if (signal in live or signal in sinks
                or signal in graph.top_inputs
                or signal in graph.top_outputs):
            continue
        line = min(a.line for _p, a in graph.drivers[signal])
        findings.append(Finding(
            code="dead-logic", severity="info",
            message=f"'{signal.name}' drives no output or observable "
                    f"effect",
            path=signal.name, line=line,
        ))
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_design(design: Design, unit: ast.SourceUnit) -> list[Finding]:
    """All findings for an elaborated design, severity-major order."""
    graph = DataflowGraph(design, unit)
    loops = _check_comb_loops(graph)
    loop_members: set = set()
    for component in graph.comb_sccs():
        loop_members |= set(component)
    findings = list(loops)
    findings.extend(_check_drivers(graph))
    findings.extend(_check_undriven(graph))
    findings.extend(_check_port_widths(graph))
    findings.extend(_check_x_prop(graph, loop_members))
    findings.extend(_check_fsms(graph))
    findings.extend(_check_const_branches(graph))
    findings.extend(_check_dead_logic(graph))
    findings.sort(key=lambda f: (
        _SEVERITY_RANK.get(f.severity, 3), f.line, f.code, f.path,
        f.message,
    ))
    return findings


def infer_top(unit: ast.SourceUnit) -> str:
    """Conventional top pick: the first module nobody instantiates."""
    instantiated = {
        inst.module_name
        for module in unit.modules
        for inst in module.instances
    }
    for module in unit.modules:
        if module.name not in instantiated:
            return module.name
    return unit.modules[-1].name if unit.modules else ""


def analyze_source(source: str, top: str | None = None):
    """Compile + analyze; returns ``(CompileReport, findings)``.

    Findings are empty when the design does not compile — the compile
    report's own stage/errors cover that case.
    """
    from .compile import check_syntax, compile_design

    if top is None:
        syntax = check_syntax(source)
        if not syntax.ok:
            return syntax, []
        assert syntax.unit is not None
        top = infer_top(syntax.unit)
    report = compile_design(source, top=top)
    if not report.ok or report.design is None or report.unit is None:
        return report, []
    return report, analyze_design(report.design, report.unit)


def check_design(design: Design, unit: ast.SourceUnit) -> list[Finding]:
    """Gate entry point: raise :class:`AnalysisError` on error findings.

    Returns the full finding list when the design passes the gate.
    """
    findings = analyze_design(design, unit)
    errors = error_findings(findings)
    if errors:
        first = errors[0]
        raise AnalysisError(
            first.message, line=first.line, code=first.code,
            path=first.path,
        )
    return findings


__all__ = [
    "DataflowGraph",
    "FINDING_CODES",
    "Finding",
    "analyze_design",
    "analyze_source",
    "check_design",
    "error_findings",
    "finding_from_dict",
    "finding_to_dict",
    "infer_top",
]
