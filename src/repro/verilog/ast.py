"""AST node definitions for the Verilog subset.

Nodes are plain dataclasses; the parser builds them and the elaborator /
simulator consume them.  Every node carries a source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0


@dataclass
class Number(Expr):
    """A literal; width/base resolved at parse time."""

    value_bits: str = "0"  # MSB-first bit string with 0/1/x/z
    width: int = 32
    signed: bool = False
    sized: bool = False  # explicit size given (8'hFF) vs bare decimal


@dataclass
class StringLit(Expr):
    text: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class BitSelect(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class PartSelect(Expr):
    base: Expr | None = None
    msb: Expr | None = None
    lsb: Expr | None = None


@dataclass
class IndexedPartSelect(Expr):
    """``base[start +: width]`` / ``base[start -: width]``."""

    base: Expr | None = None
    start: Expr | None = None
    width: Expr | None = None
    ascending: bool = True


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Ternary(Expr):
    cond: Expr | None = None
    if_true: Expr | None = None
    if_false: Expr | None = None


@dataclass
class Concat(Expr):
    parts: list[Expr] = field(default_factory=list)


@dataclass
class Replicate(Expr):
    count: Expr | None = None
    value: Expr | None = None


@dataclass
class FunctionCall(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class SystemCall(Expr):
    """``$signed(...)``, ``$unsigned(...)``, ``$time``, ``$random``..."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    """``begin ... end`` (optionally named)."""

    name: str | None = None
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class Assign(Stmt):
    """Procedural assignment, blocking (=) or nonblocking (<=)."""

    target: Expr | None = None
    value: Expr | None = None
    nonblocking: bool = False
    delay: Expr | None = None  # intra-assignment delay  #d a = b


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then_stmt: Stmt | None = None
    else_stmt: Stmt | None = None


@dataclass
class CaseItem:
    exprs: list[Expr] = field(default_factory=list)  # empty => default
    body: Stmt | None = None


@dataclass
class Case(Stmt):
    kind: str = "case"  # case | casez | casex
    subject: Expr | None = None
    items: list[CaseItem] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class Repeat(Stmt):
    count: Expr | None = None
    body: Stmt | None = None


@dataclass
class Forever(Stmt):
    body: Stmt | None = None


@dataclass
class DelayStmt(Stmt):
    """``#delay stmt_or_null``."""

    delay: Expr | None = None
    body: Stmt | None = None


@dataclass
class EventControl(Stmt):
    """``@(...) stmt`` or ``@* stmt``."""

    senses: list["SenseItem"] = field(default_factory=list)  # empty => @*
    body: Stmt | None = None


@dataclass
class Wait(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class SysTaskCall(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class TaskCall(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class NullStmt(Stmt):
    pass


@dataclass
class Disable(Stmt):
    target: str = ""


# ----------------------------------------------------------------------
# Module items
# ----------------------------------------------------------------------
@dataclass
class SenseItem:
    """One entry of a sensitivity list."""

    edge: str | None = None  # None | 'posedge' | 'negedge'
    expr: Expr | None = None


@dataclass
class Range:
    """``[msb:lsb]`` — both bounds constant expressions."""

    msb: Expr | None = None
    lsb: Expr | None = None


@dataclass
class NetDecl:
    """wire/reg/integer declaration (one name per decl after parsing)."""

    kind: str = "wire"  # wire | reg | integer | genvar
    name: str = ""
    range: Range | None = None
    array: Range | None = None  # memory dimension
    signed: bool = False
    init: Expr | None = None  # reg r = 0;
    line: int = 0


@dataclass
class Port:
    direction: str = "input"  # input | output | inout
    name: str = ""
    range: Range | None = None
    net_kind: str = "wire"  # wire | reg
    signed: bool = False
    line: int = 0


@dataclass
class ParamDecl:
    name: str = ""
    value: Expr | None = None
    is_local: bool = False
    line: int = 0


@dataclass
class ContinuousAssign:
    target: Expr | None = None
    value: Expr | None = None
    line: int = 0


@dataclass
class AlwaysBlock:
    body: Stmt | None = None
    line: int = 0


@dataclass
class InitialBlock:
    body: Stmt | None = None
    line: int = 0


@dataclass
class PortConnection:
    name: str | None = None  # None for positional
    expr: Expr | None = None


@dataclass
class Instance:
    module_name: str = ""
    instance_name: str = ""
    connections: list[PortConnection] = field(default_factory=list)
    param_overrides: list[PortConnection] = field(default_factory=list)
    line: int = 0


@dataclass
class FunctionDecl:
    """A Verilog ``function`` (single return value, no timing controls)."""

    name: str = ""
    range: Range | None = None
    signed: bool = False
    inputs: list[Port] = field(default_factory=list)
    decls: list[NetDecl] = field(default_factory=list)
    body: Stmt | None = None
    line: int = 0


@dataclass
class Module:
    name: str = ""
    ports: list[Port] = field(default_factory=list)
    params: list[ParamDecl] = field(default_factory=list)
    decls: list[NetDecl] = field(default_factory=list)
    assigns: list[ContinuousAssign] = field(default_factory=list)
    always_blocks: list[AlwaysBlock] = field(default_factory=list)
    initial_blocks: list[InitialBlock] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class SourceUnit:
    """A parsed compilation unit (one or more modules)."""

    modules: list[Module] = field(default_factory=list)

    def module(self, name: str) -> Module | None:
        for mod in self.modules:
            if mod.name == name:
                return mod
        return None
