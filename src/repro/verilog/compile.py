"""Icarus-Verilog-like driver: the compile and run gates of the pipeline.

The paper compiles each LLM completion with ``iverilog`` and, when that
succeeds, simulates it against a test bench.  This module provides the
same two entry points over our own frontend:

* :func:`check_syntax` — lex + parse only (fast structural gate);
* :func:`compile_design` — lex + parse + elaborate a top module;
* :func:`run_simulation` — compile and simulate, returning printed output.

Failure reports carry the *stage* that rejected the design ("parse",
"elaborate" or "sim") and the first diagnostic's source line, so
downstream consumers (structured :class:`~repro.eval.jobs.JobError`
fields, the agentic repair loop's re-prompts) never scrape the message
strings.

Every report also carries per-stage wall clock (``parse_seconds``,
``elaborate_seconds``, ``sim_seconds``) measured here, at the stage
boundary, so the evaluator's always-on profile (:mod:`repro.obs`) reads
timings off the report instead of re-wrapping the frontend — the
verilog layer itself stays observability-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .ast import SourceUnit
from .elaborate import Design, elaborate
from .errors import VerilogError
from .parser import parse
from .sim import SimResult, simulate


@dataclass
class CompileReport:
    """Result of a compile attempt (success or diagnostics).

    ``stage`` names the phase that produced ``errors`` ("parse",
    "elaborate", "sim"; "" on clean success) and ``line`` is the first
    error's source line when the frontend knew it (0 otherwise).
    """

    ok: bool
    errors: list[str] = field(default_factory=list)
    unit: SourceUnit | None = None
    design: Design | None = None
    stage: str = ""
    line: int = 0
    parse_seconds: float = 0.0
    elaborate_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: Compiled-engine plan summary when ``run_simulation`` ran with
    #: ``compile_sim=True`` and engine construction succeeded; None on
    #: the pure-interpreter path.
    sim_engine: dict | None = None

    @property
    def error_text(self) -> str:
        return "\n".join(self.errors)


def check_syntax(source: str) -> CompileReport:
    """Parse-only check, the cheapest 'does it compile' gate."""
    started = time.perf_counter()
    try:
        unit = parse(source)
    except VerilogError as exc:
        return CompileReport(
            ok=False, errors=[str(exc)], stage="parse", line=exc.line,
            parse_seconds=time.perf_counter() - started,
        )
    except RecursionError:
        return CompileReport(
            ok=False, errors=["expression nesting too deep"], stage="parse",
            parse_seconds=time.perf_counter() - started,
        )
    return CompileReport(
        ok=True, unit=unit, parse_seconds=time.perf_counter() - started
    )


def compile_design(source: str, top: str | None = None) -> CompileReport:
    """Full compile: parse and elaborate ``top`` (default: last module).

    Elaboration catches the class of errors Icarus reports beyond syntax:
    undeclared identifiers, bad port connections, width-less parameters,
    unknown modules.
    """
    report = check_syntax(source)
    if not report.ok:
        return report
    assert report.unit is not None
    if top is None:
        top = report.unit.modules[-1].name
    started = time.perf_counter()
    try:
        design = elaborate(report.unit, top)
    except VerilogError as exc:
        return CompileReport(
            ok=False,
            errors=[str(exc)],
            unit=report.unit,
            stage="elaborate",
            line=exc.line,
            parse_seconds=report.parse_seconds,
            elaborate_seconds=time.perf_counter() - started,
        )
    except RecursionError:
        return CompileReport(
            ok=False,
            errors=["elaboration recursion limit"],
            unit=report.unit,
            stage="elaborate",
            parse_seconds=report.parse_seconds,
            elaborate_seconds=time.perf_counter() - started,
        )
    return CompileReport(
        ok=True,
        unit=report.unit,
        design=design,
        parse_seconds=report.parse_seconds,
        elaborate_seconds=time.perf_counter() - started,
    )


def run_simulation(
    source: str,
    top: str | None = None,
    max_time: int = 1_000_000,
    max_steps: int = 2_000_000,
    profiler=None,
    compile_sim: bool = False,
    analysis_findings=None,
    compile_plan: dict | None = None,
) -> tuple[CompileReport, SimResult | None]:
    """Compile then simulate; returns (compile report, sim result or None).

    ``profiler`` is passed through to the simulator untouched (see
    :class:`repro.obs.profile.SimProfiler`); this keeps the injection
    point at the same stage boundary as the timing fields.

    ``compile_sim=True`` lowers the elaborated design to closures first
    (:class:`repro.verilog.codegen.CompiledEngine`) and runs the fast
    engine; processes the compiler can't cover fall back per process to
    the interpreter, and any engine-construction failure falls back to
    fully interpreted execution — verdicts are identical either way.
    ``analysis_findings`` (PR 8 netlist findings, when the caller already
    ran the analyzer) feed the two-state proof; the engine's plan summary
    lands in ``report.sim_engine``.  A ``compile_plan`` from a previous
    run of the same source (the on-disk plan cache) pins the two-state
    decision so the proof is skipped.
    """
    report = compile_design(source, top)
    if not report.ok:
        return report, None
    assert report.design is not None
    engine = None
    if compile_sim:
        from .codegen import CompiledEngine

        two_state = None
        if compile_plan is not None:
            cached = compile_plan.get("two_state")
            if isinstance(cached, bool):
                two_state = cached
        try:
            engine = CompiledEngine(
                report.design, findings=analysis_findings,
                two_state=two_state,
            )
        except Exception:
            engine = None  # fully interpreted run; behavior unchanged
        else:
            report.sim_engine = engine.plan()
    started = time.perf_counter()
    try:
        result = simulate(report.design, max_time=max_time,
                          max_steps=max_steps, profiler=profiler,
                          engine=engine)
    except VerilogError as exc:
        return (
            CompileReport(
                ok=True,
                errors=[f"runtime: {exc}"],
                unit=report.unit,
                design=report.design,
                stage="sim",
                line=exc.line,
                parse_seconds=report.parse_seconds,
                elaborate_seconds=report.elaborate_seconds,
                sim_seconds=time.perf_counter() - started,
                sim_engine=report.sim_engine,
            ),
            None,
        )
    report.sim_seconds = time.perf_counter() - started
    return report, result
