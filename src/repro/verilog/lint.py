"""Static lint checks over parsed Verilog.

The paper's discussion suggests designers could use LLMs to produce a
"syntactically-correct 'skeleton' of a design" to then refine.  This
module grades such skeletons beyond the binary compile gate, with the
classic RTL-quality checks:

========================  ==============================================
code                      meaning
========================  ==============================================
``missing-default``       combinational ``case`` without a default item
``incomplete-sens``       explicit sensitivity list misses signals read
``latch-risk``            ``@*`` block with a path that skips an assign
``nb-in-comb``            nonblocking assign inside a combinational block
``blocking-in-seq``       blocking assign inside an edge-triggered block
``unused-signal``         declared net/reg never read
``undriven``              net/output read but never driven
``multi-driven``          variable assigned from multiple always blocks
``width-trunc``           RHS wider than assignment target
========================  ==============================================

Every check works on the AST only (no simulation), so linting is cheap
enough to run on whole corpora.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .eval import collect_reads


@dataclass(frozen=True)
class LintWarning:
    """One finding: machine code, human message, source line."""

    code: str
    message: str
    line: int = 0

    def __str__(self) -> str:
        return f"line {self.line}: [{self.code}] {self.message}"


def lint_source_unit(unit: ast.SourceUnit) -> list[LintWarning]:
    warnings: list[LintWarning] = []
    for module in unit.modules:
        warnings.extend(lint_module(module))
    return warnings


def lint_module(module: ast.Module) -> list[LintWarning]:
    """All lint findings for one module, sorted by line."""
    warnings: list[LintWarning] = []
    warnings.extend(_check_case_defaults(module))
    warnings.extend(_check_sensitivity(module))
    warnings.extend(_check_latch_risk(module))
    warnings.extend(_check_assign_styles(module))
    warnings.extend(_check_signal_usage(module))
    warnings.extend(_check_multiple_drivers(module))
    warnings.extend(_check_width_truncation(module))
    return sorted(warnings, key=lambda w: (w.line, w.code))


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _is_sequential(block: ast.AlwaysBlock) -> bool:
    body = block.body
    return isinstance(body, ast.EventControl) and any(
        sense.edge is not None for sense in body.senses
    )


def _is_combinational(block: ast.AlwaysBlock) -> bool:
    body = block.body
    return isinstance(body, ast.EventControl) and all(
        sense.edge is None for sense in body.senses
    )


def _walk_statements(stmt: ast.Stmt | None):
    """Yield every statement in a tree (pre-order)."""
    if stmt is None:
        return
    yield stmt
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _walk_statements(child)
    elif isinstance(stmt, ast.If):
        yield from _walk_statements(stmt.then_stmt)
        yield from _walk_statements(stmt.else_stmt)
    elif isinstance(stmt, ast.Case):
        for item in stmt.items:
            yield from _walk_statements(item.body)
    elif isinstance(stmt, ast.For):
        yield from _walk_statements(stmt.init)
        yield from _walk_statements(stmt.step)
        yield from _walk_statements(stmt.body)
    elif isinstance(stmt, (ast.While, ast.Repeat, ast.Forever)):
        yield from _walk_statements(stmt.body)
    elif isinstance(stmt, (ast.DelayStmt, ast.EventControl, ast.Wait)):
        yield from _walk_statements(stmt.body)


def _assigned_names(stmt: ast.Stmt | None) -> set[str]:
    names: set[str] = set()
    for node in _walk_statements(stmt):
        if isinstance(node, ast.Assign):
            _lvalue_names(node.target, names)
    return names


def _lvalue_names(target: ast.Expr | None, into: set[str]) -> None:
    if isinstance(target, ast.Identifier):
        into.add(target.name)
    elif isinstance(
        target, (ast.BitSelect, ast.PartSelect, ast.IndexedPartSelect)
    ):
        _lvalue_names(target.base, into)
    elif isinstance(target, ast.Concat):
        for part in target.parts:
            _lvalue_names(part, into)


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def _check_case_defaults(module: ast.Module) -> list[LintWarning]:
    warnings = []
    widths: dict[str, int | None] = {
        port.name: _static_width(port.range) for port in module.ports
    }
    for decl in module.decls:
        widths[decl.name] = (
            32 if decl.kind == "integer" else _static_width(decl.range)
        )
    for block in module.always_blocks:
        if not _is_combinational(block):
            continue
        for node in _walk_statements(block.body):
            if isinstance(node, ast.Case) and not any(
                not item.exprs for item in node.items
            ):
                if _case_fully_covered(node, widths):
                    continue
                warnings.append(
                    LintWarning(
                        "missing-default",
                        "combinational case without a default item",
                        node.line,
                    )
                )
    return warnings


def _case_fully_covered(case: ast.Case, widths: dict) -> bool:
    """True when a plain ``case`` enumerates every value of its selector.

    Only claims coverage for an identifier selector of statically known
    width N whose items are constant labels covering all 2**N values —
    a full-coverage case needs no default and should not warn.
    """
    if case.kind != "case" or not isinstance(case.subject, ast.Identifier):
        return False
    width = widths.get(case.subject.name)
    if width is None or not 0 < width <= 16:
        return False
    values: set[int] = set()
    for item in case.items:
        for expr in item.exprs:
            value = _const_value(expr)
            if value is None or not 0 <= value < (1 << width):
                return False
            values.add(value)
    return len(values) == (1 << width)


def _check_sensitivity(module: ast.Module) -> list[LintWarning]:
    warnings = []
    declared = {d.name for d in module.decls} | {p.name for p in module.ports}
    for block in module.always_blocks:
        body = block.body
        if not isinstance(body, ast.EventControl) or not body.senses:
            continue
        if any(sense.edge is not None for sense in body.senses):
            continue  # sequential blocks read state on purpose
        listed: set[str] = set()
        for sense in body.senses:
            collect_reads(sense.expr, listed)
        read = collect_reads(body.body) & declared
        missing = sorted(read - listed)
        if missing:
            warnings.append(
                LintWarning(
                    "incomplete-sens",
                    "sensitivity list misses: " + ", ".join(missing),
                    block.line,
                )
            )
    return warnings


def _check_latch_risk(module: ast.Module) -> list[LintWarning]:
    warnings = []
    for block in module.always_blocks:
        if not _is_combinational(block):
            continue
        body = block.body.body if isinstance(block.body, ast.EventControl) else block.body
        always_set = _always_assigned(body)
        ever_set = _assigned_names(body)
        latchy = sorted(ever_set - always_set)
        if latchy:
            warnings.append(
                LintWarning(
                    "latch-risk",
                    "not assigned on every path: " + ", ".join(latchy),
                    block.line,
                )
            )
    return warnings


def _always_assigned(stmt: ast.Stmt | None) -> set[str]:
    """Names assigned on *every* control path through ``stmt``."""
    if stmt is None:
        return set()
    if isinstance(stmt, ast.Block):
        names: set[str] = set()
        for child in stmt.stmts:
            names |= _always_assigned(child)
        return names
    if isinstance(stmt, ast.Assign):
        names = set()
        _lvalue_names(stmt.target, names)
        return names
    if isinstance(stmt, ast.If):
        if stmt.else_stmt is None:
            return set()
        return _always_assigned(stmt.then_stmt) & _always_assigned(
            stmt.else_stmt
        )
    if isinstance(stmt, ast.Case):
        has_default = any(not item.exprs for item in stmt.items)
        if not has_default or not stmt.items:
            return set()
        common: set[str] | None = None
        for item in stmt.items:
            assigned = _always_assigned(item.body)
            common = assigned if common is None else (common & assigned)
        return common or set()
    return set()


def _check_assign_styles(module: ast.Module) -> list[LintWarning]:
    warnings = []
    for block in module.always_blocks:
        sequential = _is_sequential(block)
        combinational = _is_combinational(block)
        for node in _walk_statements(block.body):
            if not isinstance(node, ast.Assign):
                continue
            if combinational and node.nonblocking:
                warnings.append(
                    LintWarning(
                        "nb-in-comb",
                        "nonblocking assignment in combinational block",
                        node.line,
                    )
                )
            if sequential and not node.nonblocking:
                targets: set[str] = set()
                _lvalue_names(node.target, targets)
                warnings.append(
                    LintWarning(
                        "blocking-in-seq",
                        "blocking assignment to "
                        + ", ".join(sorted(targets))
                        + " in edge-triggered block",
                        node.line,
                    )
                )
    return warnings


def _module_reads(module: ast.Module) -> set[str]:
    reads: set[str] = set()
    for cont in module.assigns:
        # target index expressions count as reads of the index nets
        # (``assign mem[addr] = x`` reads ``addr``); wrapping in a
        # procedural Assign reuses collect_reads' target-index walk
        collect_reads(
            ast.Assign(target=cont.target, value=cont.value), reads
        )
    for block in module.always_blocks:
        collect_reads(block.body, reads)
    for block in module.initial_blocks:
        collect_reads(block.body, reads)
    for instance in module.instances:
        for conn in instance.connections:
            if conn.expr is not None:
                collect_reads(conn.expr, reads)
    return reads


def _module_writes(module: ast.Module) -> set[str]:
    writes: set[str] = set()
    for cont in module.assigns:
        _lvalue_names(cont.target, writes)
    for block in module.always_blocks:
        writes |= _assigned_names(block.body)
    for block in module.initial_blocks:
        writes |= _assigned_names(block.body)
    for instance in module.instances:
        # outputs of children drive the connected expressions; without
        # child direction info, any connected identifier counts as driven
        for conn in instance.connections:
            if isinstance(conn.expr, ast.Identifier):
                writes.add(conn.expr.name)
            elif isinstance(conn.expr, ast.Concat):
                _lvalue_names(conn.expr, writes)
    return writes


def _check_signal_usage(module: ast.Module) -> list[LintWarning]:
    warnings = []
    reads = _module_reads(module)
    writes = _module_writes(module)
    outputs = {p.name for p in module.ports if p.direction == "output"}
    inputs = {p.name for p in module.ports if p.direction != "output"}
    for decl in module.decls:
        if decl.name in inputs or decl.name in outputs:
            continue
        if decl.name not in reads and decl.name not in writes:
            warnings.append(
                LintWarning(
                    "unused-signal",
                    f"{decl.name!r} is declared but never used",
                    decl.line,
                )
            )
    for name in sorted(outputs):
        if name not in writes:
            line = next(
                (p.line for p in module.ports if p.name == name), module.line
            )
            warnings.append(
                LintWarning("undriven", f"output {name!r} is never driven", line)
            )
    return warnings


def _check_multiple_drivers(module: ast.Module) -> list[LintWarning]:
    warnings = []
    driver_blocks: dict[str, int] = {}
    for block in module.always_blocks:
        for name in _assigned_names(block.body):
            driver_blocks[name] = driver_blocks.get(name, 0) + 1
    assign_targets: set[str] = set()
    for cont in module.assigns:
        _lvalue_names(cont.target, assign_targets)
    for name, count in sorted(driver_blocks.items()):
        if count > 1:
            warnings.append(
                LintWarning(
                    "multi-driven",
                    f"{name!r} is assigned from {count} always blocks",
                    module.line,
                )
            )
        if name in assign_targets:
            warnings.append(
                LintWarning(
                    "multi-driven",
                    f"{name!r} has both a continuous assign and an always driver",
                    module.line,
                )
            )
    return warnings


def _check_width_truncation(module: ast.Module) -> list[LintWarning]:
    widths: dict[str, int] = {}
    for port in module.ports:
        widths[port.name] = _static_width(port.range)
    for decl in module.decls:
        widths[decl.name] = (
            32 if decl.kind == "integer" else _static_width(decl.range)
        )

    warnings = []

    def check(target: ast.Expr | None, value: ast.Expr | None, line: int):
        if not isinstance(target, ast.Identifier) or value is None:
            return
        lhs_width = widths.get(target.name)
        rhs_width = _expr_static_width(value, widths)
        if lhs_width and rhs_width and rhs_width > lhs_width:
            warnings.append(
                LintWarning(
                    "width-trunc",
                    f"{rhs_width}-bit value truncated to "
                    f"{lhs_width}-bit {target.name!r}",
                    line,
                )
            )

    for cont in module.assigns:
        check(cont.target, cont.value, cont.line)
    for block in module.always_blocks + module.initial_blocks:
        for node in _walk_statements(block.body):
            if isinstance(node, ast.Assign):
                check(node.target, node.value, node.line)
    return warnings


def _static_width(rng: ast.Range | None) -> int | None:
    if rng is None:
        return 1
    msb = _const_value(rng.msb)
    lsb = _const_value(rng.lsb)
    if msb is None or lsb is None:
        return None
    return abs(msb - lsb) + 1


def _const_value(expr: ast.Expr | None) -> int | None:
    if isinstance(expr, ast.Number) and "x" not in expr.value_bits and "z" not in expr.value_bits:
        return int(expr.value_bits, 2)
    return None


def _expr_static_width(expr: ast.Expr | None, widths: dict) -> int | None:
    """Conservative static width: only sized literals, ids and concats."""
    if isinstance(expr, ast.Number):
        return expr.width if expr.sized else None  # bare decimals are lax
    if isinstance(expr, ast.Identifier):
        return widths.get(expr.name)
    if isinstance(expr, ast.Concat):
        total = 0
        for part in expr.parts:
            width = _expr_static_width(part, widths)
            if width is None:
                return None
            total += width
        return total
    if isinstance(expr, ast.Replicate):
        count = _const_value(expr.count)
        inner = _expr_static_width(expr.value, widths)
        if count is None or inner is None:
            return None
        return count * inner
    if isinstance(expr, ast.BitSelect):
        return 1
    return None  # operators: context rules make static claims unsafe
