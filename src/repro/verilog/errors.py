"""Exception hierarchy for the Verilog frontend and simulator.

Mirrors the failure classes that Icarus Verilog reports in the paper's
pipeline: lexical/syntax errors (compile gate), elaboration errors
(hierarchy/parameter problems), and runtime simulation errors.
"""

from __future__ import annotations


class VerilogError(Exception):
    """Base class for all errors raised by :mod:`repro.verilog`."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line:
            return f"line {self.line}:{self.column}: {self.message}"
        return self.message


class LexError(VerilogError):
    """Raised when the character stream cannot be tokenized."""


class ParseError(VerilogError):
    """Raised when the token stream is not a valid Verilog description."""


class ElaborationError(VerilogError):
    """Raised when a parsed design cannot be elaborated into a hierarchy.

    Examples: instantiating an unknown module, connecting an unknown port,
    redeclaring a signal, or referencing an undeclared identifier.
    """


class SimulationError(VerilogError):
    """Raised when a legal design misbehaves at runtime.

    Examples: exceeding the simulation step limit (a zero-delay loop) or
    an out-of-range memory word select in a context we cannot x-out.
    """


class AnalysisError(VerilogError):
    """Raised by the strict netlist analysis gate for error findings.

    Carries the structured finding coordinates so job-level failure
    records (:class:`repro.eval.jobs.JobError`) report the machine code
    and hierarchical path, not just the message: a combinational loop
    becomes ``stage="analysis", code="comb-loop", path="dut.y"`` instead
    of a simulator iteration-limit blowup minutes later.
    """

    def __init__(
        self, message: str, line: int = 0, code: str = "", path: str = ""
    ):
        self.code = code
        self.path = path
        super().__init__(message, line)
