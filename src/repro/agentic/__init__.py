"""Agentic generate → test → repair workload.

The paper evaluates single-shot completions; this subsystem adds the
natural next axis (after colinedsall/localagent's self-correction
agent): a bounded multi-turn repair loop that feeds structured
compile/sim failures back to the model and re-samples until the test
bench passes or the budget runs out, reported as pass@k *versus repair
budget*.

Layering:

* :mod:`~repro.agentic.transcript` — multi-turn conversation state and
  the transcript hash (the per-attempt VerdictStore key);
* :mod:`~repro.agentic.feedback`   — structured failure → re-prompt
  formatting (stage, diagnostics, lint);
* :mod:`~repro.agentic.loop`       — the per-sample repair chain;
* :mod:`~repro.agentic.backend`    — :class:`RepairingBackend`, the
  Backend-protocol adapter that lets repair sweeps ride every existing
  executor, the shard coordinator and the streaming server unchanged;
* :mod:`~repro.agentic.jobs`       — :class:`RepairJob` planning and
  the one-call :func:`execute_repair_sweep`.
"""

from .backend import RepairingBackend
from .feedback import format_feedback, lint_findings
from .jobs import (
    RepairJob,
    RepairPlan,
    RepairPlanner,
    execute_repair_sweep,
    run_repair_job,
)
from .loop import (
    RepairAttempt,
    RepairConfig,
    RepairOutcome,
    evaluate_attempt,
    repair_completion,
)
from .transcript import Transcript, Turn

__all__ = [
    "RepairAttempt",
    "RepairConfig",
    "RepairJob",
    "RepairOutcome",
    "RepairPlan",
    "RepairPlanner",
    "RepairingBackend",
    "Transcript",
    "Turn",
    "evaluate_attempt",
    "execute_repair_sweep",
    "format_feedback",
    "lint_findings",
    "repair_completion",
    "run_repair_job",
]
