"""The generate → evaluate → format-error → re-prompt repair loop.

One repair chain per sample: the initial completion is evaluated with
the shared :class:`~repro.eval.pipeline.Evaluator`; while it fails and
budget remains, the structured failure is formatted into a feedback
turn (:mod:`repro.agentic.feedback`), the grown transcript goes back
through the :class:`~repro.backends.base.Backend` chat surface for one
re-sample, and the new attempt is evaluated in turn.  The loop stops on
the first pass or on budget exhaustion and returns the *final*
completion plus the full per-attempt history.

Every attempt's verdict is persisted in the
:class:`~repro.eval.store.VerdictStore` under the **transcript hash**
(the conversation so far, attempt included) — not just the completion
hash — so a warm store replays whole repair chains without
re-simulating, and identical completions reached through different
repair histories stay distinguishable.

Everything here is deterministic given a deterministic backend, which
is what makes sharded repair sweeps merge byte-identically with serial
runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..backends.base import Backend
from ..eval.pipeline import CompletionEvaluation, Evaluator
from ..models.base import Completion, GenerationConfig
from ..obs import REGISTRY, record_span
from ..problems import Problem, PromptLevel
from .feedback import format_feedback, lint_findings
from .transcript import Transcript


@dataclass(frozen=True)
class RepairConfig:
    """Knobs of one repair loop.

    ``budget`` is the maximum number of *repair rounds* after the
    initial attempt (0 disables repair entirely); ``max_feedback_errors``
    bounds how many diagnostics each re-prompt quotes;
    ``include_lint`` adds static-lint findings to the feedback when the
    failed attempt still parses.
    """

    budget: int = 1
    max_feedback_errors: int = 3
    include_lint: bool = True

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if self.max_feedback_errors < 0:
            raise ValueError("max_feedback_errors must be >= 0")


@dataclass(frozen=True)
class RepairAttempt:
    """One evaluated attempt in a repair chain (round 0 = initial)."""

    round: int
    verdict: str
    stage: str
    compiled: bool
    passed: bool
    transcript_hash: int
    inference_seconds: float = 0.0


@dataclass
class RepairOutcome:
    """What one repair chain produced.

    ``completion`` is the final attempt with ``inference_seconds``
    accumulated over the whole chain (repair spend is real inference
    spend); ``attempts`` is the full history, oldest first.
    """

    completion: Completion
    transcript: Transcript
    attempts: list[RepairAttempt] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].passed

    @property
    def rounds_used(self) -> int:
        """Repair rounds consumed (0 = the initial attempt sufficed)."""
        return max(0, len(self.attempts) - 1)


#: Per-attempt observer (the NDJSON ``attempt`` event source).
AttemptCallback = Callable[[RepairAttempt], None]


def evaluate_attempt(
    evaluator: Evaluator,
    problem: Problem,
    level: PromptLevel,
    completion_text: str,
    transcript: Transcript,
    store=None,
) -> tuple[CompletionEvaluation, int]:
    """Evaluate one attempt, keyed in the store by transcript hash.

    The store is consulted first: a previously-seen repair chain skips
    compile+simulate entirely (warm-start).  On a miss the shared
    evaluator computes the verdict (its own completion-hash cache and
    store write still apply) and the verdict is persisted again under
    the transcript hash.
    """
    transcript_hash = transcript.transcript_hash
    if store is not None:
        cached = store.get(problem.number, transcript_hash)
        if cached is not None:
            return cached, transcript_hash
    verdict = evaluator.evaluate(problem, completion_text, level)
    if store is not None:
        store.put(problem.number, transcript_hash, verdict)
    return verdict, transcript_hash


def repair_completion(
    backend: Backend,
    model: str,
    problem: Problem,
    level: PromptLevel,
    prompt: str,
    completion: Completion,
    generation: GenerationConfig,
    repair: RepairConfig,
    evaluator: Evaluator,
    store=None,
    on_attempt: "AttemptCallback | None" = None,
) -> RepairOutcome:
    """Run one sample's repair chain to pass or budget exhaustion."""
    transcript = Transcript.start(prompt)
    transcript.add_assistant(completion.text)
    attempts: list[RepairAttempt] = []
    current = completion
    total_seconds = completion.inference_seconds

    def record(
        verdict: CompletionEvaluation, transcript_hash: int, elapsed: float
    ) -> None:
        attempt = RepairAttempt(
            round=len(attempts),
            verdict=verdict.verdict,
            stage=verdict.stage,
            compiled=verdict.compiled,
            passed=verdict.passed,
            transcript_hash=transcript_hash,
            inference_seconds=current.inference_seconds,
        )
        attempts.append(attempt)
        REGISTRY.inc("repair_attempts", verdict=attempt.verdict)
        record_span(
            "repair_attempt",
            elapsed,
            round=attempt.round,
            verdict=attempt.verdict,
            stage=attempt.stage,
            problem=problem.number,
            model=model,
        )
        if on_attempt is not None:
            on_attempt(attempt)

    round_started = time.perf_counter()
    verdict, transcript_hash = evaluate_attempt(
        evaluator, problem, level, current.text, transcript, store
    )
    record(verdict, transcript_hash, time.perf_counter() - round_started)

    while not verdict.passed and len(attempts) <= repair.budget:
        round_started = time.perf_counter()
        lint = (
            lint_findings(problem, current.text, level)
            if repair.include_lint
            else []
        )
        transcript.add_user(
            format_feedback(
                verdict,
                round_index=len(attempts),
                max_errors=repair.max_feedback_errors,
                lint=lint,
            )
        )
        single = GenerationConfig(
            temperature=generation.temperature,
            n=1,
            max_tokens=generation.max_tokens,
            top_p=generation.top_p,
        )
        replies = backend.generate_chat(model, transcript.messages(), single)
        if not replies:  # a backend that returns nothing ends the chain
            break
        current = replies[0]
        total_seconds += current.inference_seconds
        transcript.add_assistant(current.text)
        verdict, transcript_hash = evaluate_attempt(
            evaluator, problem, level, current.text, transcript, store
        )
        record(verdict, transcript_hash, time.perf_counter() - round_started)

    final = Completion(
        text=current.text,
        inference_seconds=total_seconds,
        tokens=current.tokens,
    )
    return RepairOutcome(
        completion=final, transcript=transcript, attempts=attempts
    )


__all__ = [
    "AttemptCallback",
    "RepairAttempt",
    "RepairConfig",
    "RepairOutcome",
    "evaluate_attempt",
    "repair_completion",
]
