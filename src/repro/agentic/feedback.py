"""Failure → re-prompt formatting for the repair loop.

Turns a structured :class:`~repro.eval.pipeline.CompletionEvaluation`
into the feedback turn of a repair transcript: a compact, comment-only
summary of *why* the previous attempt failed (stage, diagnostics with
line numbers, lint findings) followed by the retry instruction.  All
feedback lines are ``//`` comments, so appending them to a flattened
transcript never changes how the zoo (or any parser) reads the code
itself; the structured fields come straight off the evaluation — no
error-string scraping.
"""

from __future__ import annotations

from ..eval.pipeline import CompletionEvaluation
from ..models.base import REPAIR_FEEDBACK_MARKER
from ..problems import Problem, PromptLevel

_STAGE_HEADLINES = {
    "parse": "the previous completion has a syntax error",
    "elaborate": "the previous completion parsed but failed elaboration",
    "analysis": "the previous completion compiled but static analysis "
    "found a structural defect",
    "sim": "the previous completion crashed during simulation",
    "testbench": "the previous completion compiled but failed the test "
    "bench",
}


def lint_findings(
    problem: Problem,
    completion: str,
    level: PromptLevel = PromptLevel.LOW,
    limit: int = 3,
) -> list[str]:
    """Static-lint findings for a completion, best effort.

    Empty when the source does not parse (nothing to lint) or the
    linter itself trips — feedback quality degrades gracefully instead
    of failing the repair round.
    """
    from ..verilog import lint_source_unit, parse

    try:
        unit = parse(problem.full_source(completion, level))
        warnings = lint_source_unit(unit)
    except Exception:  # noqa: BLE001 — lint is advisory only
        return []
    return [str(warning) for warning in warnings[:limit]]


def format_feedback(
    evaluation: CompletionEvaluation,
    round_index: int,
    max_errors: int = 3,
    lint: "list[str] | tuple[str, ...]" = (),
) -> str:
    """The user turn that re-prompts the model after a failed attempt.

    Opens with :data:`~repro.models.base.REPAIR_FEEDBACK_MARKER` (the
    machine-readable "this is an error-conditioned re-query" signal the
    repairable zoo keys on), names the failing stage, quotes up to
    ``max_errors`` diagnostics, and closes with the retry instruction.
    """
    headline = _STAGE_HEADLINES.get(
        evaluation.stage, "the previous completion failed verification"
    )
    lines = [f"{REPAIR_FEEDBACK_MARKER} (round {round_index}): {headline}"]
    shown = list(evaluation.compile_errors[:max_errors])
    for error in shown:
        lines.append(f"//   {evaluation.stage or 'error'}: {error}")
    hidden = len(evaluation.compile_errors) - len(shown)
    if hidden > 0:
        lines.append(f"//   (+{hidden} more diagnostic(s) not shown)")
    if evaluation.error_line and not shown:
        lines.append(f"//   first error near line {evaluation.error_line}")
    if evaluation.stage == "testbench" and not shown:
        if evaluation.sim_finished:
            lines.append("//   the test bench ran and reported mismatches")
        else:
            lines.append(
                "//   simulation did not finish (possible runaway loop)"
            )
    analysis = [
        f for f in getattr(evaluation, "findings", ())
        if evaluation.stage != "analysis" or f.severity != "error"
    ]
    for finding in analysis[:max_errors]:
        lines.append(f"//   analysis: {finding}")
    for finding in lint:
        lines.append(f"//   lint: {finding}")
    lines.append(
        "// Rewrite the complete module body, fixing the problem above."
    )
    return "\n".join(lines)


__all__ = ["format_feedback", "lint_findings"]
