"""Bounded multi-turn repair transcripts.

A :class:`Transcript` is the conversation state of one repair chain:
the original benchmark prompt, the model's completion, then alternating
(error feedback, re-completion) turns up to the repair budget.  It
renders three ways:

* :meth:`messages` — chat-style role/content dicts for
  :meth:`~repro.backends.base.Backend.generate_chat`;
* :meth:`flatten` — one prompt string (what completion-style backends
  see; it starts with the original prompt, so the zoo's module-header
  and prompt-level matching still work on it);
* :meth:`render` — a canonical role-tagged serialization whose
  :func:`~repro.models.base.stable_hash` is the *transcript hash*, the
  :class:`~repro.eval.store.VerdictStore` key for per-attempt verdicts.
  Two attempts with the same completion text but different repair
  histories hash differently — the point of keying by transcript, not
  prompt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.base import stable_hash

ROLE_USER = "user"
ROLE_ASSISTANT = "assistant"

#: Unit/record separators: unambiguous turn framing for render()
#: (no content collision the way "\n".join could produce).
_TURN_SEP = "\x1e"
_ROLE_SEP = "\x1f"


@dataclass(frozen=True)
class Turn:
    """One conversation turn."""

    role: str
    content: str


@dataclass
class Transcript:
    """An ordered list of turns, user-first."""

    turns: list[Turn] = field(default_factory=list)

    @classmethod
    def start(cls, prompt: str) -> "Transcript":
        """A fresh transcript opened with the benchmark prompt."""
        return cls(turns=[Turn(ROLE_USER, prompt)])

    def add_user(self, content: str) -> None:
        self.turns.append(Turn(ROLE_USER, content))

    def add_assistant(self, content: str) -> None:
        self.turns.append(Turn(ROLE_ASSISTANT, content))

    # ------------------------------------------------------------------
    @property
    def prompt(self) -> str:
        """The opening user prompt."""
        return self.turns[0].content if self.turns else ""

    @property
    def rounds(self) -> int:
        """Completed assistant turns (attempt 0 counts as round 1)."""
        return sum(turn.role == ROLE_ASSISTANT for turn in self.turns)

    def messages(self) -> list[dict]:
        """Chat-shaped dicts for :meth:`Backend.generate_chat`."""
        return [
            {"role": turn.role, "content": turn.content}
            for turn in self.turns
        ]

    def flatten(self) -> str:
        """All turn contents joined — the completion-backend view."""
        return "\n".join(turn.content for turn in self.turns)

    def render(self) -> str:
        """Canonical serialization (role-tagged, separator-framed)."""
        return _TURN_SEP.join(
            f"{turn.role}{_ROLE_SEP}{turn.content}" for turn in self.turns
        )

    @property
    def transcript_hash(self) -> int:
        """Deterministic 64-bit hash of the full conversation so far."""
        return stable_hash(self.render())

    def __len__(self) -> int:
        return len(self.turns)


__all__ = [
    "ROLE_ASSISTANT",
    "ROLE_USER",
    "Transcript",
    "Turn",
]
