"""Repair-sweep planning: RepairJobs over the existing job machinery.

A :class:`RepairJob` pairs one
:class:`~repro.eval.jobs.GenerationJob` with its repair budget; a
:class:`RepairPlanner` expands a sweep config the same way the plain
:class:`~repro.eval.jobs.SweepPlanner` does (identical nesting order,
identical skips), so repair plans keep the serial-order parity
invariant.  Execution goes through the standard executors with the
backend wrapped in a :class:`~repro.agentic.backend.RepairingBackend`
— :func:`execute_repair_sweep` is the one-call path, and
:func:`run_repair_job` drives a single job's chains directly (tests,
notebooks, the CLI ``repair`` command's detail view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..backends.base import Backend
from ..eval.harness import CompletionRecord, SweepConfig
from ..eval.jobs import (
    GenerationJob,
    SkippedJob,
    SweepPlan,
    SweepPlanner,
    SweepResult,
    evaluate_completions,
    execute_sweep,
)
from ..eval.pipeline import Evaluator
from ..problems import get_problem
from .backend import RepairingBackend
from .loop import AttemptCallback, RepairConfig, RepairOutcome, \
    repair_completion


@dataclass(frozen=True)
class RepairJob:
    """One generation unit plus its bounded repair budget."""

    job: GenerationJob
    budget: int

    @property
    def model(self) -> str:
        return self.job.model

    @property
    def problem(self) -> int:
        return self.job.problem


@dataclass
class RepairPlan:
    """Planner output: repair jobs, skips, and the underlying plan."""

    jobs: list[RepairJob] = field(default_factory=list)
    skipped: list[SkippedJob] = field(default_factory=list)
    config: SweepConfig = field(default_factory=SweepConfig)
    repair: RepairConfig = field(default_factory=RepairConfig)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def plan(self) -> SweepPlan:
        """The plain :class:`SweepPlan` this repair plan decorates."""
        return SweepPlan(
            jobs=[rjob.job for rjob in self.jobs],
            skipped=list(self.skipped),
            config=self.config,
        )


class RepairPlanner:
    """Expand a sweep config into budgeted :class:`RepairJob` units."""

    def __init__(self, backend: Backend, repair: RepairConfig | None = None):
        self.backend = backend
        self.repair = repair or RepairConfig()

    def plan(
        self,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
    ) -> RepairPlan:
        base = SweepPlanner(self.backend).plan(config, models=models)
        return RepairPlan(
            jobs=[RepairJob(job=job, budget=self.repair.budget)
                  for job in base.jobs],
            skipped=list(base.skipped),
            config=base.config,
            repair=self.repair,
        )


def run_repair_job(
    backend: Backend,
    evaluator: Evaluator,
    repair_job: RepairJob,
    repair: RepairConfig | None = None,
    store=None,
    on_attempt: "AttemptCallback | None" = None,
) -> tuple[list[CompletionRecord], list[RepairOutcome]]:
    """Drive one RepairJob's chains; records reflect the final attempts.

    ``backend`` is the *raw* generation backend (not a
    :class:`RepairingBackend` — wrapping happens here), so the per-chain
    :class:`RepairOutcome` histories stay visible to the caller.
    """
    repair = repair or RepairConfig(budget=repair_job.budget)
    job = repair_job.job
    problem = get_problem(job.problem)
    prompt = problem.prompt(job.level)
    config = job.generation_config()
    completions = backend.generate(job.model, prompt, config)
    outcomes = [
        repair_completion(
            backend, job.model, problem, job.level, prompt, completion,
            config, repair, evaluator, store=store, on_attempt=on_attempt,
        )
        for completion in completions
    ]
    records = evaluate_completions(
        evaluator, job, [outcome.completion for outcome in outcomes]
    )
    return records, outcomes


def execute_repair_sweep(
    backend: "Backend | str | None",
    repair: RepairConfig | None = None,
    config: SweepConfig | None = None,
    models: Sequence[str] | None = None,
    evaluator: Evaluator | None = None,
    workers: int = 1,
    store=None,
) -> SweepResult:
    """Plan + execute a repair sweep through the standard executors."""
    repairing = RepairingBackend(
        backend, repair=repair, evaluator=evaluator, store=store
    )
    return execute_sweep(
        repairing,
        config=config,
        models=models,
        evaluator=repairing.evaluator,
        workers=workers,
    )


__all__ = [
    "RepairJob",
    "RepairPlan",
    "RepairPlanner",
    "execute_repair_sweep",
    "run_repair_job",
]
