"""RepairingBackend: the repair loop behind the Backend protocol.

Wrapping a backend (instead of adding a fourth executor) is what lets
repair sweeps ride the *entire* existing stack unchanged: the thread,
process and async executors, the shard planner/coordinator, streamed
submission and the NDJSON server all talk to ``Backend.generate`` — so
a :class:`RepairingBackend` drops in anywhere a plain backend does,
and the serial-order merge parity invariant holds because the repair
chains themselves are deterministic.

``generate`` runs the inner backend once, then drives each sample's
:func:`~repro.agentic.loop.repair_completion` chain and returns the
*final* completions; prompts that don't match a benchmark problem pass
through unrepaired (there is nothing to evaluate them against).

The attempt log is the streaming hook: when armed
(:meth:`start_attempt_log`), every evaluated attempt is recorded as a
JSON-ready event dict; the async executor drains the log between job
completions and forwards the events as ``attempt`` frames over the aio
server.

Process-pool note: pickling ships only (inner backend, repair config,
store) — the evaluator, lock and attempt log are rebuilt per process,
mirroring how the process executor rebuilds its own evaluator.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..backends.base import Backend, ModelCapabilities, resolve_backend
from ..eval.pipeline import Evaluator
from ..eval.store import resolve_store
from ..models.base import Completion, GenerationConfig
from ..models.zoo import match_prompt_to_problem
from .loop import RepairAttempt, RepairConfig, repair_completion


class RepairingBackend(Backend):
    """A backend whose completions have already survived repair."""

    def __init__(
        self,
        inner: "Backend | str | None",
        repair: RepairConfig | None = None,
        evaluator: Evaluator | None = None,
        store=None,
    ):
        self.inner = resolve_backend(inner)
        self.repair = repair or RepairConfig()
        self.store = resolve_store(store)
        self.evaluator = evaluator or Evaluator(store=self.store)
        self.name = f"repair({self.inner.name})"
        self._attempt_lock = threading.Lock()
        self._attempt_events: list[dict] = []
        self._collecting = False

    # ------------------------------------------------------------------
    # Backend protocol: planning surfaces delegate to the inner backend,
    # so a repair plan is byte-identical to the plain plan.
    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        return self.inner.models()

    def capabilities(self, model: str) -> ModelCapabilities:
        return self.inner.capabilities(model)

    def identity(self, model: str) -> tuple[str, bool]:
        return self.inner.identity(model)

    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        completions = self.inner.generate(model, prompt, config)
        return self._repair_samples(model, prompt, config, completions)

    def generate_batch(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        batches = self.inner.generate_batch(model, requests)
        return [
            self._repair_samples(model, prompt, config, completions)
            for (prompt, config), completions in zip(requests, batches)
        ]

    def generate_chat(
        self,
        model: str,
        messages: Sequence[dict],
        config: GenerationConfig,
    ) -> list[Completion]:
        # chat requests come *from* a repair loop; never re-enter it
        return self.inner.generate_chat(model, messages, config)

    # ------------------------------------------------------------------
    # The repair pass
    # ------------------------------------------------------------------
    def _repair_samples(
        self,
        model: str,
        prompt: str,
        config: GenerationConfig,
        completions: list[Completion],
    ) -> list[Completion]:
        if self.repair.budget < 1:
            return completions
        matched = match_prompt_to_problem(prompt)
        if matched is None:  # off-benchmark prompt: nothing to test against
            return completions
        problem, level = matched
        repaired: list[Completion] = []
        for index, completion in enumerate(completions):
            outcome = repair_completion(
                self.inner,
                model,
                problem,
                level,
                prompt,
                completion,
                config,
                self.repair,
                self.evaluator,
                store=self.store,
                on_attempt=self._attempt_hook(model, problem, config, index),
            )
            repaired.append(outcome.completion)
        return repaired

    # ------------------------------------------------------------------
    # Attempt log (the NDJSON `attempt` event source)
    # ------------------------------------------------------------------
    def _attempt_hook(self, model, problem, config, sample_index):
        if not self._collecting:
            return None

        def hook(attempt: RepairAttempt) -> None:
            event = {
                "model": model,
                "problem": problem.number,
                "temperature": config.temperature,
                "sample_index": sample_index,
                "round": attempt.round,
                "verdict": attempt.verdict,
                "stage": attempt.stage,
                # hex string: 64-bit hashes exceed JSON's exact-int range
                "transcript_hash": f"{attempt.transcript_hash:016x}",
            }
            with self._attempt_lock:
                self._attempt_events.append(event)

        return hook

    def start_attempt_log(self) -> None:
        """Arm per-attempt event collection (idempotent; clears old)."""
        with self._attempt_lock:
            self._collecting = True
            self._attempt_events = []

    def stop_attempt_log(self) -> None:
        with self._attempt_lock:
            self._collecting = False

    def drain_attempt_events(self) -> list[dict]:
        """Collected attempt events so far, oldest first (destructive)."""
        with self._attempt_lock:
            events = self._attempt_events
            self._attempt_events = []
        return events

    # ------------------------------------------------------------------
    # Process-pool pickling: ship config, rebuild state per process
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "inner": self.inner,
            "repair": self.repair,
            "store": self.store,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["inner"], repair=state["repair"], store=state["store"]
        )


__all__ = ["RepairingBackend"]
