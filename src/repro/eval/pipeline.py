"""Per-completion evaluation: compile gate + functional test bench.

Mirrors the paper's analysis pipeline (Fig. 1, step 8): truncate the
completion, compile it with the Verilog frontend (Icarus stand-in), and —
when it compiles — simulate the problem's test bench and grep the output
for the pass marker.

Evaluations are cached by (problem, truncated completion text): the paper
notes LLMs "tend to provide similar responses when several completions
per prompt are requested", so the cache collapses most of the sweep's
work, exactly like memoizing ``iverilog`` runs on identical files.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..models.base import stable_hash
from ..obs import REGISTRY, observe_stage
from ..obs.profile import maybe_sim_profiler, record_profile
from ..problems import PASS_MARKER, Problem, PromptLevel
from ..verilog import (
    AnalysisError,
    Finding,
    analyze_design,
    compile_design,
    error_findings,
    lint_source_unit,
    run_simulation,
)
from .truncate import truncate_completion


@dataclass(frozen=True)
class CompletionEvaluation:
    """Verdict for one completion.

    ``stage`` names the phase that rejected it — ``"parse"``,
    ``"elaborate"``, ``"analysis"`` (static netlist gate), ``"sim"``
    (runtime crash inside the bench) or ``"testbench"`` (ran but failed
    the checks); ``""`` on a pass.  ``error_line`` is the first
    diagnostic's source line when the frontend knew it (0 otherwise).
    Both exist so repair prompts and reports read structured fields
    instead of scraping error strings.

    ``findings`` carries the netlist analysis results
    (:class:`~repro.verilog.analyze.Finding`) for any completion that
    reached elaboration; warnings/infos are advisory and never flip the
    verdict, error findings short-circuit at ``stage="analysis"``.
    """

    compiled: bool
    passed: bool
    compile_errors: tuple[str, ...] = ()
    sim_finished: bool = False
    stage: str = ""
    error_line: int = 0
    findings: tuple[Finding, ...] = ()

    @property
    def verdict(self) -> str:
        if not self.compiled:
            return "compile-error"
        return "pass" if self.passed else "test-fail"


class Evaluator:
    """Caching compile+simulate evaluator.

    Thread-safe: the cache is guarded by a lock so one instance can be
    shared across a :class:`~repro.eval.jobs.SweepExecutor` worker pool.
    Two workers racing on the same uncached key may both evaluate it
    (evaluation is pure, so both compute the identical verdict); the
    lock only protects the cache dict and the hit/miss counters.

    ``store`` is an optional :class:`~repro.eval.store.VerdictStore`
    consulted between the in-memory cache and a real compile+simulate:
    a hit there costs one small file read instead of a simulation, and
    every fresh verdict is written back, so evaluators in other
    processes (process-pool workers, coordinator workers, later runs)
    share the work.
    """

    def __init__(
        self,
        max_time: int = 1_000_000,
        max_steps: int = 2_000_000,
        store=None,
        analysis: bool = True,
        strict_analysis: bool = False,
        compile_sim: bool = True,
    ):
        self.max_time = max_time
        self.max_steps = max_steps
        self.store = store
        #: run bench simulations on the netlist→closure engine
        #: (:mod:`repro.verilog.codegen`); verdicts are identical to the
        #: interpreter's by construction, so the flag never enters cache
        #: keys.  When a VerdictStore is attached, compile plans persist
        #: in its ``simcache/`` subdirectory keyed by bench-source hash.
        self.compile_sim = compile_sim
        #: run the netlist static-analysis pass (and lint counters)
        #: between elaboration and simulation; error findings reject the
        #: design at stage="analysis" without ever starting the bench
        self.analysis = analysis
        #: raise :class:`~repro.verilog.AnalysisError` instead of
        #: returning a failed evaluation, so job runners surface a
        #: structured JobError with stage/code/path
        self.strict_analysis = strict_analysis
        self._cache: dict[tuple[int, int], CompletionEvaluation] = {}
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0

    def evaluate(
        self,
        problem: Problem,
        completion: str,
        level: PromptLevel = PromptLevel.LOW,
    ) -> CompletionEvaluation:
        """Evaluate one completion against ``problem``.

        ``level`` selects the prompt the completion is appended to; the
        cache key ignores it because the three prompts differ only in
        comments and cannot change the verdict.
        """
        truncated = truncate_completion(completion)
        key = (problem.number, stable_hash(truncated))
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                REGISTRY.inc("evaluator_cache", result="hit")
                return cached
        if self.store is not None:
            stored = self.store.get(*key)
            if stored is not None:
                with self._lock:
                    self.store_hits += 1
                    self._cache[key] = stored
                REGISTRY.inc("evaluator_cache", result="store_hit")
                return stored
        with self._lock:
            self.cache_misses += 1
        REGISTRY.inc("evaluator_cache", result="miss")
        result = self._evaluate_uncached(problem, truncated, level)
        with self._lock:
            self._cache[key] = result
        if self.store is not None:
            self.store.put(*key, result)
        return result

    def _evaluate_uncached(
        self, problem: Problem, truncated: str, level: PromptLevel
    ) -> CompletionEvaluation:
        source = problem.full_source(truncated, level)
        report = compile_design(source, top=problem.module_name)
        self._observe_report(problem, report, design=True)
        if not report.ok:
            return CompletionEvaluation(
                compiled=False, passed=False,
                compile_errors=tuple(report.errors),
                stage=report.stage, error_line=report.line,
            )
        findings: tuple[Finding, ...] = ()
        if self.analysis:
            findings = self._analyze(problem, report)
            gate = error_findings(findings)
            if gate:
                first = gate[0]
                if self.strict_analysis:
                    raise AnalysisError(
                        first.message, line=first.line,
                        code=first.code, path=first.path,
                    )
                # a comb loop would spin the simulator to its iteration
                # limit; reject here in milliseconds instead.  The
                # verdict booleans match what simulation would conclude
                # (compiled, not passed), keeping record parity with
                # unanalyzed sweeps.
                return CompletionEvaluation(
                    compiled=True, passed=False,
                    compile_errors=tuple(str(f) for f in gate),
                    stage="analysis", error_line=first.line,
                    findings=findings,
                )
        bench = problem.bench_source(truncated, level)
        # None unless profiling is enabled AND a trace sink is installed,
        # in which case the bench simulation attributes its wall time to
        # netlist constructs and publishes one `profile` frame per run.
        profiler = maybe_sim_profiler()
        sim_cache = bench_hash = plan = None
        if self.compile_sim and self.store is not None:
            sim_cache = self.store.sim_cache()
        if sim_cache is not None:
            bench_hash = stable_hash(bench)
            plan = sim_cache.get(bench_hash)
            if plan is not None:
                REGISTRY.inc("sim_compile_cache_hits_total")
        bench_report, sim = run_simulation(
            bench, top="tb", max_time=self.max_time,
            max_steps=self.max_steps, profiler=profiler,
            compile_sim=self.compile_sim,
            analysis_findings=findings if findings else None,
            compile_plan=plan,
        )
        if (sim_cache is not None and plan is None
                and bench_report.sim_engine is not None):
            sim_cache.put(bench_hash, bench_report.sim_engine)
        self._observe_report(problem, bench_report, design=False)
        if profiler is not None:
            record_profile(
                profiler, problem=problem.number,
                sim_seconds=bench_report.sim_seconds,
                engine="compiled" if bench_report.sim_engine is not None
                else "interpreter",
            )
        if not bench_report.ok or sim is None:
            # compiles standalone but dies inside the bench (e.g. runaway
            # loop): counts as compiled, not passed
            return CompletionEvaluation(
                compiled=True, passed=False,
                compile_errors=tuple(bench_report.errors),
                stage=bench_report.stage if bench_report.stage == "sim"
                else "testbench",
                error_line=bench_report.line,
                findings=findings,
            )
        passed = sim.finished and PASS_MARKER in sim.text
        return CompletionEvaluation(
            compiled=True, passed=passed, sim_finished=sim.finished,
            stage="" if passed else "testbench",
            findings=findings,
        )

    def _analyze(self, problem: Problem, report) -> tuple[Finding, ...]:
        """Netlist analysis + defect-class counters for one design.

        Advisory robustness: an analyzer crash degrades to "no
        findings" rather than failing the evaluation — only the
        structured error findings themselves may gate.
        """
        started = time.perf_counter()
        try:
            findings = tuple(analyze_design(report.design, report.unit))
        except Exception:
            findings = ()
        observe_stage(
            "analysis", time.perf_counter() - started,
            problem=problem.number,
        )
        for finding in findings:
            REGISTRY.inc("analysis_findings_total", code=finding.code)
        try:
            for warning in lint_source_unit(report.unit):
                REGISTRY.inc("lint_findings_total", code=warning.code)
        except Exception:
            pass
        return findings

    @staticmethod
    def _observe_report(problem: Problem, report, design: bool) -> None:
        """Always-on per-problem stage timers off a CompileReport.

        Design compiles profile as ``parse``/``elaborate``; the bench
        run's compile side profiles as ``testbench`` (constructing the
        self-checking harness) and its simulate side as ``sim`` — the
        four-way split the sim-compile roadmap item needs.
        """
        number = problem.number
        if design:
            if report.parse_seconds:
                observe_stage("parse", report.parse_seconds, problem=number)
            if report.elaborate_seconds:
                observe_stage(
                    "elaborate", report.elaborate_seconds, problem=number
                )
        else:
            bench_compile = report.parse_seconds + report.elaborate_seconds
            if bench_compile:
                observe_stage("testbench", bench_compile, problem=number)
            if report.sim_seconds:
                observe_stage("sim", report.sim_seconds, problem=number)

    @property
    def cache_info(self) -> dict:
        info = {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
        }
        if self.store is not None:
            info["store_hits"] = self.store_hits
        return info
