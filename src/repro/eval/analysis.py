"""Statistical analysis on sweep results beyond the paper's tables.

The paper reports point estimates only; follow-on benchmarks (VerilogEval
and successors) standardized on the unbiased pass@k estimator and on
uncertainty reporting.  This module adds both over our sweep records:

* :func:`pass_at_k_curve` — pass@k for k = 1..n per (model, problem);
* :func:`scenario_pass_at_k` — averaged over a scenario, the way Codex
  and VerilogEval report it;
* :func:`bootstrap_interval` — percentile bootstrap CI on any pass rate;
* :func:`model_comparison` — paired bootstrap test that one model's pass
  rate exceeds another's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..problems import Difficulty, PromptLevel
from .harness import CompletionRecord, Sweep
from .metrics import mean, pass_at_k


def _per_problem_counts(
    records: list[CompletionRecord],
) -> dict[tuple[int, PromptLevel, float], tuple[int, int]]:
    """{(problem, level, t): (correct, total)} over a record slice."""
    counts: dict[tuple[int, PromptLevel, float], tuple[int, int]] = {}
    for record in records:
        key = (record.problem, record.level, record.temperature)
        correct, total = counts.get(key, (0, 0))
        counts[key] = (correct + record.passed, total + 1)
    return counts


def pass_at_k_curve(
    sweep: Sweep,
    model: str,
    problem: int,
    level: PromptLevel,
    temperature: float,
    max_k: int | None = None,
) -> dict[int, float]:
    """pass@k for k = 1..n on one (model, problem, level, t) cell."""
    records = [
        r
        for r in sweep.filter(
            model=model, problem=problem, level=level, temperature=temperature
        )
    ]
    n = len(records)
    if n == 0:
        return {}
    c = sum(r.passed for r in records)
    top = min(max_k or n, n)
    return {k: pass_at_k(n, c, k) for k in range(1, top + 1)}


def scenario_pass_at_k(
    sweep: Sweep,
    model: str,
    k: int,
    difficulty: Difficulty | None = None,
    level: PromptLevel | None = None,
    temperature: float = 0.1,
) -> float:
    """Mean unbiased pass@k over the problems of a scenario."""
    records = sweep.filter(
        model=model, difficulty=difficulty, level=level,
        temperature=temperature,
    )
    values: list[float] = []
    counts = _per_problem_counts(records)
    for (_problem, _lvl, _t), (c, n) in sorted(
        counts.items(), key=lambda kv: (kv[0][0], str(kv[0][1]), kv[0][2])
    ):
        if n >= k:
            values.append(pass_at_k(n, c, k))
    return mean(values)


@dataclass(frozen=True)
class BootstrapInterval:
    """Percentile bootstrap confidence interval for a pass rate."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_interval(
    outcomes: list[bool],
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI on the mean of Bernoulli outcomes."""
    if not outcomes:
        return BootstrapInterval(0.0, 0.0, 0.0, confidence)
    rng = random.Random(seed)
    n = len(outcomes)
    point = sum(outcomes) / n
    stats = sorted(
        sum(rng.choice(outcomes) for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low = stats[int(alpha * resamples)]
    high = stats[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return BootstrapInterval(point, low, high, confidence)


def model_comparison(
    sweep: Sweep,
    model_a: str,
    model_b: str,
    metric: str = "passed",
    resamples: int = 2_000,
    seed: int = 0,
) -> float:
    """P(model_a's rate > model_b's) under a paired bootstrap.

    Returns the fraction of resamples in which model_a wins; ~1.0 means a
    decisive win, ~0.5 means indistinguishable.
    """
    outcomes_a = [
        getattr(r, metric) for r in sweep.filter(model=model_a)
    ]
    outcomes_b = [
        getattr(r, metric) for r in sweep.filter(model=model_b)
    ]
    if not outcomes_a or not outcomes_b:
        raise ValueError("both models need records in the sweep")
    rng = random.Random(seed)
    wins = 0
    n_a, n_b = len(outcomes_a), len(outcomes_b)
    for _ in range(resamples):
        rate_a = sum(rng.choice(outcomes_a) for _ in range(n_a)) / n_a
        rate_b = sum(rng.choice(outcomes_b) for _ in range(n_b)) / n_b
        wins += rate_a > rate_b
    return wins / resamples
