"""Sweep result export: CSV and JSON for external analysis and sharding.

Downstream users (plotting notebooks, the VerilogEval-style leaderboards)
want raw records, not our rendered ASCII tables.  Exports are stable:
column order is fixed and enum fields serialize to their string values.

Beyond plain record tables, this module is the wire codec for the
distributed sweep service: jobs, skips, errors, configs and whole
:class:`~repro.eval.jobs.SweepResult`s round-trip through dicts/JSON so
shard manifests (:mod:`repro.service.sharding`) and the HTTP eval
service (:mod:`repro.service.server`) share one schema.
"""

from __future__ import annotations

import csv
import io
import json

from ..problems import Difficulty, PromptLevel
from .harness import CompletionRecord, Sweep, SweepConfig

_LEVEL_BY_VALUE = {str(level): level for level in PromptLevel}
_DIFFICULTY_BY_VALUE = {str(d): d for d in Difficulty}

CSV_COLUMNS = (
    "model", "base_model", "fine_tuned", "problem", "difficulty", "level",
    "temperature", "n", "sample_index", "compiled", "passed",
    "inference_seconds",
)


def _row(record: CompletionRecord) -> dict:
    return {
        "model": record.model,
        "base_model": record.base_model,
        "fine_tuned": record.fine_tuned,
        "problem": record.problem,
        "difficulty": str(record.difficulty),
        "level": str(record.level),
        "temperature": record.temperature,
        "n": record.n,
        "sample_index": record.sample_index,
        "compiled": record.compiled,
        "passed": record.passed,
        # full repr, not rounded: JSON floats round-trip exactly, so
        # wire-shipped shard results merge with *exact* record parity
        "inference_seconds": record.inference_seconds,
    }


def sweep_to_csv(sweep: Sweep) -> str:
    """Render a sweep as CSV text (header + one row per completion)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for record in sweep.records:
        writer.writerow(_row(record))
    return buffer.getvalue()


def sweep_to_json(sweep: Sweep, indent: int | None = None) -> str:
    """Render a sweep as a JSON array of record objects."""
    return json.dumps([_row(r) for r in sweep.records], indent=indent)


def save_sweep(sweep: Sweep, path: str) -> None:
    """Write a sweep to ``path`` (.csv or .json decides the format)."""
    if path.endswith(".csv"):
        payload = sweep_to_csv(sweep)
    elif path.endswith(".json"):
        payload = sweep_to_json(sweep)
    else:
        raise ValueError(f"unsupported export extension: {path!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def record_from_dict(row: dict) -> CompletionRecord:
    """Rebuild one :class:`CompletionRecord` from its :func:`_row` dict."""
    return CompletionRecord(
        model=row["model"],
        base_model=row["base_model"],
        fine_tuned=bool(row["fine_tuned"]),
        problem=int(row["problem"]),
        difficulty=_DIFFICULTY_BY_VALUE[row["difficulty"]],
        level=_LEVEL_BY_VALUE[row["level"]],
        temperature=float(row["temperature"]),
        n=int(row["n"]),
        sample_index=int(row["sample_index"]),
        compiled=bool(row["compiled"]),
        passed=bool(row["passed"]),
        inference_seconds=float(row["inference_seconds"]),
    )


record_to_dict = _row


def load_sweep_json(payload: str) -> Sweep:
    """Rebuild a Sweep from :func:`sweep_to_json` output."""
    return Sweep(records=[record_from_dict(row) for row in json.loads(payload)])


# ----------------------------------------------------------------------
# Job / skip / error / config codecs (the service + shard wire schema)
# ----------------------------------------------------------------------
def job_to_dict(job) -> dict:
    return {
        "model": job.model,
        "base_model": job.base_model,
        "fine_tuned": job.fine_tuned,
        "problem": job.problem,
        "level": str(job.level),
        "temperature": job.temperature,
        "n": job.n,
        "max_tokens": job.max_tokens,
    }


def job_from_dict(row: dict):
    from .jobs import GenerationJob

    return GenerationJob(
        model=row["model"],
        base_model=row["base_model"],
        fine_tuned=bool(row["fine_tuned"]),
        problem=int(row["problem"]),
        level=_LEVEL_BY_VALUE[row["level"]],
        temperature=float(row["temperature"]),
        n=int(row["n"]),
        max_tokens=int(row["max_tokens"]),
    )


def skip_to_dict(skip) -> dict:
    return {
        "model": skip.model,
        "problem": skip.problem,
        "level": str(skip.level),
        "temperature": skip.temperature,
        "n": skip.n,
        "reason": skip.reason,
    }


def skip_from_dict(row: dict):
    from .jobs import SkippedJob

    return SkippedJob(
        model=row["model"],
        problem=int(row["problem"]),
        level=_LEVEL_BY_VALUE[row["level"]],
        temperature=float(row["temperature"]),
        n=int(row["n"]),
        reason=row["reason"],
    )


def error_to_dict(error) -> dict:
    return {
        "job": job_to_dict(error.job),
        "error": error.error,
        "attempts": error.attempts,
        "stage": error.stage,
        "exception": error.exception,
        "line": error.line,
        "code": error.code,
        "path": error.path,
        "attempt_seconds": list(error.attempt_seconds),
        "backoff_seconds": error.backoff_seconds,
    }


def error_from_dict(row: dict):
    from .jobs import JobError

    return JobError(
        job=job_from_dict(row["job"]),
        error=row["error"],
        attempts=int(row.get("attempts", 1)),
        stage=str(row.get("stage", "")),
        exception=str(row.get("exception", "")),
        line=int(row.get("line", 0)),
        code=str(row.get("code", "")),
        path=str(row.get("path", "")),
        attempt_seconds=tuple(
            float(s) for s in row.get("attempt_seconds", [])
        ),
        backoff_seconds=float(row.get("backoff_seconds", 0.0)),
    )


def config_to_dict(config: SweepConfig) -> dict:
    return {
        "temperatures": list(config.temperatures),
        "completions_per_prompt": list(config.completions_per_prompt),
        "levels": [str(level) for level in config.levels],
        "problem_numbers": list(config.problem_numbers),
        "max_tokens": config.max_tokens,
    }


def config_from_dict(row: dict) -> SweepConfig:
    defaults = SweepConfig()
    return SweepConfig(
        temperatures=tuple(
            float(t) for t in row.get("temperatures", defaults.temperatures)
        ),
        completions_per_prompt=tuple(
            int(n)
            for n in row.get(
                "completions_per_prompt", defaults.completions_per_prompt
            )
        ),
        levels=tuple(
            _LEVEL_BY_VALUE[str(level)]
            for level in row.get("levels", [str(l) for l in defaults.levels])
        ),
        problem_numbers=tuple(
            int(p)
            for p in row.get("problem_numbers", defaults.problem_numbers)
        ),
        max_tokens=int(row.get("max_tokens", defaults.max_tokens)),
    )


# ----------------------------------------------------------------------
# Verdict codec (the on-disk verdict store + coordinator state schema)
# ----------------------------------------------------------------------
def evaluation_to_dict(evaluation) -> dict:
    """Serialize one :class:`~repro.eval.pipeline.CompletionEvaluation`."""
    from ..verilog import finding_to_dict

    return {
        "compiled": evaluation.compiled,
        "passed": evaluation.passed,
        "compile_errors": list(evaluation.compile_errors),
        "sim_finished": evaluation.sim_finished,
        "stage": evaluation.stage,
        "error_line": evaluation.error_line,
        "findings": [finding_to_dict(f) for f in evaluation.findings],
    }


def evaluation_from_dict(row: dict):
    from ..verilog import finding_from_dict
    from .pipeline import CompletionEvaluation

    return CompletionEvaluation(
        compiled=bool(row["compiled"]),
        passed=bool(row["passed"]),
        compile_errors=tuple(str(e) for e in row.get("compile_errors", [])),
        sim_finished=bool(row.get("sim_finished", False)),
        stage=str(row.get("stage", "")),
        error_line=int(row.get("error_line", 0)),
        findings=tuple(
            finding_from_dict(f) for f in row.get("findings", [])
        ),
    )


# ----------------------------------------------------------------------
# Whole-result round-trip (records + skip/error metadata + stats)
# ----------------------------------------------------------------------
def sweep_result_to_dict(result) -> dict:
    """Serialize a :class:`~repro.eval.jobs.SweepResult` losslessly."""
    return {
        "records": [_row(r) for r in result.sweep.records],
        "skipped": [skip_to_dict(s) for s in result.skipped],
        "errors": [error_to_dict(e) for e in result.errors],
        "stats": result.stats,
    }


def sweep_result_from_dict(row: dict):
    from .jobs import SweepResult

    return SweepResult(
        sweep=Sweep(records=[record_from_dict(r) for r in row["records"]]),
        skipped=[skip_from_dict(s) for s in row.get("skipped", [])],
        errors=[error_from_dict(e) for e in row.get("errors", [])],
        stats=dict(row.get("stats", {})),
    )


def sweep_result_to_json(result, indent: int | None = None) -> str:
    return json.dumps(sweep_result_to_dict(result), indent=indent)


def load_sweep_result_json(payload: str):
    """Rebuild a SweepResult from :func:`sweep_result_to_json` output."""
    return sweep_result_from_dict(json.loads(payload))


def save_sweep_result(result, path: str) -> None:
    """Write a full SweepResult (records + skips + errors) to JSON."""
    if not path.endswith(".json"):
        raise ValueError(f"sweep results export to .json, got {path!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(sweep_result_to_json(result))
