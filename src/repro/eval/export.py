"""Sweep result export: CSV and JSON for external analysis.

Downstream users (plotting notebooks, the VerilogEval-style leaderboards)
want raw records, not our rendered ASCII tables.  Exports are stable:
column order is fixed and enum fields serialize to their string values.
"""

from __future__ import annotations

import csv
import io
import json

from .harness import CompletionRecord, Sweep

CSV_COLUMNS = (
    "model", "base_model", "fine_tuned", "problem", "difficulty", "level",
    "temperature", "n", "sample_index", "compiled", "passed",
    "inference_seconds",
)


def _row(record: CompletionRecord) -> dict:
    return {
        "model": record.model,
        "base_model": record.base_model,
        "fine_tuned": record.fine_tuned,
        "problem": record.problem,
        "difficulty": str(record.difficulty),
        "level": str(record.level),
        "temperature": record.temperature,
        "n": record.n,
        "sample_index": record.sample_index,
        "compiled": record.compiled,
        "passed": record.passed,
        "inference_seconds": round(record.inference_seconds, 6),
    }


def sweep_to_csv(sweep: Sweep) -> str:
    """Render a sweep as CSV text (header + one row per completion)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for record in sweep.records:
        writer.writerow(_row(record))
    return buffer.getvalue()


def sweep_to_json(sweep: Sweep, indent: int | None = None) -> str:
    """Render a sweep as a JSON array of record objects."""
    return json.dumps([_row(r) for r in sweep.records], indent=indent)


def save_sweep(sweep: Sweep, path: str) -> None:
    """Write a sweep to ``path`` (.csv or .json decides the format)."""
    if path.endswith(".csv"):
        payload = sweep_to_csv(sweep)
    elif path.endswith(".json"):
        payload = sweep_to_json(sweep)
    else:
        raise ValueError(f"unsupported export extension: {path!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def load_sweep_json(payload: str) -> Sweep:
    """Rebuild a Sweep from :func:`sweep_to_json` output."""
    from ..problems import Difficulty, PromptLevel

    level_by_value = {str(level): level for level in PromptLevel}
    difficulty_by_value = {str(d): d for d in Difficulty}
    records = []
    for row in json.loads(payload):
        records.append(
            CompletionRecord(
                model=row["model"],
                base_model=row["base_model"],
                fine_tuned=bool(row["fine_tuned"]),
                problem=int(row["problem"]),
                difficulty=difficulty_by_value[row["difficulty"]],
                level=level_by_value[row["level"]],
                temperature=float(row["temperature"]),
                n=int(row["n"]),
                sample_index=int(row["sample_index"]),
                compiled=bool(row["compiled"]),
                passed=bool(row["passed"]),
                inference_seconds=float(row["inference_seconds"]),
            )
        )
    return Sweep(records=records)
