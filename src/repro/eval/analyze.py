"""Corpus-scale static analysis: the ``repro analyze`` pipeline.

Fans the netlist analyzer (:mod:`repro.verilog.analyze`) over a corpus —
loose ``.v`` files, the benchmark problem set's canonical solutions,
and/or their planted wrong variants — with a thread pool, and folds the
per-design findings into one machine-readable report (JSON) plus an
ASCII summary.  This is the "run the checker over everything" loop a
hardware team points at a directory of RTL, as opposed to the per-
completion gate inside :class:`~repro.eval.pipeline.Evaluator`.

Targets are named so findings stay attributable; reports preserve the
input order regardless of which worker finished first, so repeated runs
over the same corpus diff cleanly.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..obs import observe_stage
from ..verilog import Finding, analyze_source, finding_to_dict


@dataclass(frozen=True)
class AnalysisTarget:
    """One named design to analyze: source text plus an optional top."""

    name: str
    source: str
    top: str | None = None


@dataclass(frozen=True)
class TargetReport:
    """Analyzer verdict for one target.

    ``compiled`` is the compile gate; when it is False ``stage`` and
    ``errors`` carry the frontend diagnostics and ``findings`` is empty
    (nothing to analyze).  ``seconds`` is wall time for the whole
    compile+analyze of this target.
    """

    name: str
    compiled: bool
    stage: str = ""
    errors: tuple[str, ...] = ()
    findings: tuple[Finding, ...] = ()
    seconds: float = 0.0

    @property
    def error_findings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def clean(self) -> bool:
        return self.compiled and not self.findings


def analyze_target(target: AnalysisTarget) -> TargetReport:
    """Compile + analyze one target; never raises on bad input."""
    started = time.perf_counter()
    try:
        report, findings = analyze_source(target.source, top=target.top)
    except Exception as exc:  # noqa: BLE001 — corpus runs must not die
        seconds = time.perf_counter() - started
        observe_stage("analysis", seconds, target=target.name,
                      outcome="exception")
        return TargetReport(
            name=target.name, compiled=False, stage="analysis",
            errors=(str(exc),), seconds=seconds,
        )
    if not report.ok:
        seconds = time.perf_counter() - started
        observe_stage("analysis", seconds, target=target.name,
                      outcome=report.stage)
        return TargetReport(
            name=target.name, compiled=False, stage=report.stage,
            errors=tuple(report.errors), seconds=seconds,
        )
    seconds = time.perf_counter() - started
    observe_stage("analysis", seconds, target=target.name,
                  outcome="clean" if not findings else "findings",
                  findings=len(findings))
    return TargetReport(
        name=target.name, compiled=True, findings=tuple(findings),
        seconds=seconds,
    )


def analyze_targets(
    targets, workers: int = 1
) -> list[TargetReport]:
    """Analyze a corpus, fanning out over ``workers`` threads.

    Results come back in input order whatever the completion order, so
    two runs over the same corpus produce byte-identical reports.
    """
    targets = list(targets)
    if workers <= 1 or len(targets) <= 1:
        return [analyze_target(t) for t in targets]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(analyze_target, targets))


def targets_from_files(paths) -> list[AnalysisTarget]:
    """One target per ``.v`` file; the file path is the target name."""
    targets = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            targets.append(AnalysisTarget(name=str(path),
                                          source=handle.read()))
    return targets


def targets_from_problems(
    problems, variants: bool = False
) -> list[AnalysisTarget]:
    """Canonical solutions (and optionally planted wrong variants).

    Each problem contributes its canonical full source as
    ``problem/<slug>``; with ``variants`` every wrong variant rides
    along as ``problem/<slug>@<variant>`` — the corpus the golden
    regression test sweeps.
    """
    targets = []
    for problem in problems:
        targets.append(AnalysisTarget(
            name=f"problem/{problem.slug}",
            source=problem.canonical_source(),
            top=problem.module_name,
        ))
        if variants:
            for variant in problem.wrong_variants:
                targets.append(AnalysisTarget(
                    name=f"problem/{problem.slug}@{variant.name}",
                    source=problem.full_source(variant.body),
                    top=problem.module_name,
                ))
    return targets


def corpus_summary(reports) -> dict:
    """Aggregate counters over a corpus run: the report's header block."""
    by_code: dict[str, int] = {}
    by_severity: dict[str, int] = {}
    compile_failures = 0
    gated = 0
    for report in reports:
        if not report.compiled:
            compile_failures += 1
            continue
        if report.error_findings:
            gated += 1
        for finding in report.findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
            by_severity[finding.severity] = (
                by_severity.get(finding.severity, 0) + 1
            )
    return {
        "targets": len(reports),
        "compile_failures": compile_failures,
        "gated": gated,
        "clean": sum(1 for r in reports if r.clean),
        "findings_by_code": dict(sorted(by_code.items())),
        "findings_by_severity": dict(sorted(by_severity.items())),
        "seconds": round(sum(r.seconds for r in reports), 6),
    }


def analysis_report_to_dict(reports) -> dict:
    """The full JSON report: summary + per-target findings."""
    return {
        "summary": corpus_summary(reports),
        "targets": [
            {
                "name": r.name,
                "compiled": r.compiled,
                "stage": r.stage,
                "errors": list(r.errors),
                "findings": [finding_to_dict(f) for f in r.findings],
                "seconds": round(r.seconds, 6),
            }
            for r in reports
        ],
    }


def analysis_report_to_json(reports, indent: int | None = 2) -> str:
    return json.dumps(analysis_report_to_dict(reports), indent=indent)


def render_analysis_report(reports) -> str:
    """Human-readable corpus report (one block per non-clean target)."""
    summary = corpus_summary(reports)
    lines = [
        f"analyzed {summary['targets']} design(s): "
        f"{summary['clean']} clean, "
        f"{summary['gated']} with error findings, "
        f"{summary['compile_failures']} failed to compile",
    ]
    for code, count in summary["findings_by_code"].items():
        lines.append(f"  {code}: {count}")
    for report in reports:
        if report.clean:
            continue
        lines.append(f"-- {report.name}")
        if not report.compiled:
            stage = report.stage or "compile"
            for error in report.errors[:3]:
                lines.append(f"   {stage}: {error}")
            continue
        for finding in report.findings:
            lines.append(f"   {finding}")
    return "\n".join(lines)


__all__ = [
    "AnalysisTarget",
    "TargetReport",
    "analysis_report_to_dict",
    "analysis_report_to_json",
    "analyze_target",
    "analyze_targets",
    "corpus_summary",
    "render_analysis_report",
    "targets_from_files",
    "targets_from_problems",
]
