"""Sweep runner: models x problems x levels x temperature x n (Fig. 1).

Queries every model with every prompt combination the paper sweeps
(Sec. IV-B), pushes each completion through the caching evaluator, and
returns a flat record table that the report module slices into the
paper's tables and figures.  The "best results" selection (Sec. V-B:
present each model at the temperature where its completions were most
successful, per difficulty and description level) is implemented in
:meth:`Sweep.best_temperature`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.base import LanguageModel
from ..models.calibration import TEMPERATURES
from ..problems import ALL_PROBLEMS, Difficulty, Problem, PromptLevel
from .metrics import mean, pass_fraction
from .pipeline import Evaluator


@dataclass(frozen=True)
class CompletionRecord:
    """One evaluated completion."""

    model: str  # full variant name, e.g. "codegen-16b-ft"
    base_model: str  # Table-I name, e.g. "codegen-16b"
    fine_tuned: bool
    problem: int
    difficulty: Difficulty
    level: PromptLevel
    temperature: float
    n: int
    sample_index: int
    compiled: bool
    passed: bool
    inference_seconds: float


@dataclass(frozen=True)
class SweepConfig:
    """What to sweep."""

    temperatures: tuple[float, ...] = TEMPERATURES
    completions_per_prompt: tuple[int, ...] = (10,)
    levels: tuple[PromptLevel, ...] = tuple(PromptLevel)
    problem_numbers: tuple[int, ...] = tuple(p.number for p in ALL_PROBLEMS)
    max_tokens: int = 300

    def problems(self) -> list[Problem]:
        by_number = {p.number: p for p in ALL_PROBLEMS}
        return [by_number[n] for n in self.problem_numbers]


@dataclass
class Sweep:
    """All records of one sweep run, with slicing helpers."""

    records: list[CompletionRecord] = field(default_factory=list)
    _groups: dict | None = field(default=None, repr=False, compare=False)

    def append(self, record: CompletionRecord) -> None:
        """Add one record and invalidate the group index."""
        self.records.append(record)
        self._groups = None

    def extend(self, records: list[CompletionRecord]) -> None:
        """Add many records and invalidate the group index."""
        self.records.extend(records)
        self._groups = None

    def invalidate_index(self) -> None:
        """Force an index rebuild after mutating ``records`` in place.

        Prefer :meth:`append`/:meth:`extend`; this hook exists for code
        that replaces or reorders records directly, which the length
        fallback in :meth:`_index` cannot detect.
        """
        self._groups = None

    def _index(self) -> dict:
        """Lazy group index keyed by (model, difficulty, level, t, n).

        Built once per sweep; report assembly over tens of thousands of
        records drops from repeated linear scans to dict lookups.
        Invalidated by :meth:`append`/:meth:`extend`; the length check is
        only a fallback for legacy code appending to ``records`` directly
        (it cannot see same-length replacements — call
        :meth:`invalidate_index` for those).
        """
        if self._groups is None or sum(
            len(v) for v in self._groups.values()
        ) != len(self.records):
            groups: dict = {}
            for record in self.records:
                key = (
                    record.model, record.difficulty, record.level,
                    record.temperature, record.n,
                )
                groups.setdefault(key, []).append(record)
            self._groups = groups
        return self._groups

    def group(
        self,
        model: str,
        difficulty: Difficulty,
        level: PromptLevel | None,
        temperature: float,
        n: int,
    ) -> list[CompletionRecord]:
        """Indexed record slice; level=None merges all three levels."""
        groups = self._index()
        if level is not None:
            return groups.get((model, difficulty, level, temperature, n), [])
        merged: list[CompletionRecord] = []
        for lvl in PromptLevel:
            merged.extend(
                groups.get((model, difficulty, lvl, temperature, n), [])
            )
        return merged

    def filter(
        self,
        model: str | None = None,
        base_model: str | None = None,
        fine_tuned: bool | None = None,
        difficulty: Difficulty | None = None,
        level: PromptLevel | None = None,
        temperature: float | None = None,
        n: int | None = None,
        problem: int | None = None,
    ) -> list[CompletionRecord]:
        out = self.records
        if model is not None:
            out = [r for r in out if r.model == model]
        if base_model is not None:
            out = [r for r in out if r.base_model == base_model]
        if fine_tuned is not None:
            out = [r for r in out if r.fine_tuned == fine_tuned]
        if difficulty is not None:
            out = [r for r in out if r.difficulty == difficulty]
        if level is not None:
            out = [r for r in out if r.level == level]
        if temperature is not None:
            out = [r for r in out if abs(r.temperature - temperature) < 1e-9]
        if n is not None:
            out = [r for r in out if r.n == n]
        if problem is not None:
            out = [r for r in out if r.problem == problem]
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def rate(records: list[CompletionRecord], metric: str = "passed") -> float:
        """Pass@(scenario*n) over a record slice."""
        if metric == "passed":
            return pass_fraction([r.passed for r in records])
        if metric == "compiled":
            return pass_fraction([r.compiled for r in records])
        raise ValueError(f"unknown metric {metric!r}")

    def temperatures(self) -> list[float]:
        return sorted({r.temperature for r in self.records})

    def model_names(self) -> list[str]:
        return sorted({r.model for r in self.records})

    def best_temperature(
        self,
        model: str,
        difficulty: Difficulty,
        level: PromptLevel | None,
        n: int,
        metric: str = "passed",
    ) -> tuple[float, float]:
        """(best_t, rate) per the paper's best-results selection.

        Ties break toward higher compile rate, then lower temperature.
        """
        best: tuple[float, float, float] | None = None  # (rate, compile, -t)
        best_t = 0.0
        for t in self.temperatures():
            slice_ = self.group(model, difficulty, level, t, n)
            if not slice_:
                continue
            key = (
                self.rate(slice_, metric),
                self.rate(slice_, "compiled"),
                -t,
            )
            if best is None or key > best:
                best = key
                best_t = t
        if best is None:
            return 0.0, 0.0
        return best_t, best[0]

    def mean_inference_seconds(self, model: str) -> float:
        return mean(
            [r.inference_seconds for r in self.filter(model=model)]
        )

    def __len__(self) -> int:
        return len(self.records)


def run_sweep(
    models: list[LanguageModel],
    config: SweepConfig | None = None,
    evaluator: Evaluator | None = None,
    workers: int = 1,
) -> Sweep:
    """Run the full experimental sweep of Fig. 1 and evaluate everything.

    Compatibility shim over the job-based service (:mod:`repro.eval.jobs`):
    unsupported combinations that the old loop swallowed with a bare
    ``except ValueError`` are now planned out up front — use
    :func:`repro.api.run_sweep` to see the skip/error records.
    """
    from ..backends.local import LocalZooBackend
    from .jobs import execute_sweep

    result = execute_sweep(
        LocalZooBackend(models),
        config=config,
        models=[m.name for m in models],
        evaluator=evaluator,
        workers=workers,
    )
    return result.sweep
