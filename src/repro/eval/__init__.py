"""Evaluation framework: truncation, compile/functional gates, metrics,
sweep harness and paper-table reporting (paper Sec. IV-V)."""

from .analysis import (
    BootstrapInterval,
    bootstrap_interval,
    model_comparison,
    pass_at_k_curve,
    scenario_pass_at_k,
)
from .export import load_sweep_json, save_sweep, sweep_to_csv, sweep_to_json
from .harness import CompletionRecord, Sweep, SweepConfig, run_sweep
from .prompting import (
    HINT_MARKER,
    PROBLEM_HINTS,
    engineered_prompt,
    has_hint,
    hint_coverage,
    hint_for,
)
from .metrics import mean, pass_at_k, pass_fraction
from .pipeline import CompletionEvaluation, Evaluator
from .report import (
    Headline,
    fig6_completions,
    fig6_temperature,
    fig7_difficulty,
    fig7_levels,
    headline_numbers,
    per_problem_pass_counts,
    render_headline,
    render_series,
    render_table3,
    render_table4,
    table3,
    table4,
)
from .truncate import has_endmodule, truncate_completion

__all__ = [
    "BootstrapInterval",
    "CompletionEvaluation",
    "CompletionRecord",
    "Evaluator",
    "Headline",
    "Sweep",
    "SweepConfig",
    "fig6_completions",
    "fig6_temperature",
    "fig7_difficulty",
    "fig7_levels",
    "has_endmodule",
    "headline_numbers",
    "mean",
    "pass_at_k",
    "pass_fraction",
    "per_problem_pass_counts",
    "render_headline",
    "render_series",
    "render_table3",
    "render_table4",
    "run_sweep",
    "table3",
    "table4",
    "truncate_completion",
    "HINT_MARKER",
    "PROBLEM_HINTS",
    "bootstrap_interval",
    "engineered_prompt",
    "has_hint",
    "hint_coverage",
    "hint_for",
    "load_sweep_json",
    "model_comparison",
    "pass_at_k_curve",
    "save_sweep",
    "scenario_pass_at_k",
    "sweep_to_csv",
    "sweep_to_json",
]
