"""Cross-process verdict store: an on-disk compile/simulate cache.

The in-memory :class:`~repro.eval.pipeline.Evaluator` cache collapses
duplicate completions within one process, but every process-pool worker
(and every machine in a coordinated fleet) used to rebuild it from
scratch — the ROADMAP's "cross-process evaluator cache" opening.
:class:`VerdictStore` closes it: verdicts persist to a directory keyed
by ``(problem number, completion hash)``, one small JSON file per entry,
so any evaluator pointed at the same path — a later run, a sibling
worker process, a pull-based coordinator worker — skips the compile and
simulation entirely.

Concurrency model: writes go through a per-process temp file renamed
into place (``os.replace`` is atomic on POSIX and Windows), so readers
never observe a half-written verdict.  Two processes racing on the same
uncached key may both evaluate and both write; evaluation is pure, so
the duplicate work is bounded and the last rename wins with an
identical payload.  Corrupt or foreign files read as misses.

The store is picklable (it carries only its path), so
:class:`~repro.service.process.ProcessPoolSweepExecutor` ships it to
workers the same way it ships the backend.
"""

from __future__ import annotations

import json
import os

from .export import evaluation_from_dict, evaluation_to_dict


class VerdictStore:
    """Directory-backed map of ``(problem, completion-hash) -> verdict``."""

    def __init__(self, path: str):
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _filename(problem: int, completion_hash: int) -> str:
        return f"p{problem:02d}_{completion_hash:016x}.json"

    def _entry_path(self, problem: int, completion_hash: int) -> str:
        return os.path.join(self.path, self._filename(problem, completion_hash))

    # ------------------------------------------------------------------
    def get(self, problem: int, completion_hash: int):
        """The stored verdict, or ``None`` (missing or unreadable)."""
        try:
            with open(
                self._entry_path(problem, completion_hash), encoding="utf-8"
            ) as handle:
                return evaluation_from_dict(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, problem: int, completion_hash: int, evaluation) -> None:
        """Persist one verdict atomically (temp file + rename)."""
        target = self._entry_path(problem, completion_hash)
        temp = f"{target}.tmp-{os.getpid()}"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(evaluation_to_dict(evaluation), handle)
            os.replace(temp, target)
        except OSError:
            # a read-only or vanished store degrades to a cache miss,
            # never a failed evaluation
            try:
                os.unlink(temp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.path)
                if name.endswith(".json")
            )
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every stored verdict; returns how many were removed."""
        removed = 0
        try:
            names = os.listdir(self.path)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.path, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"VerdictStore({self.path!r}, entries={len(self)})"


def resolve_store(store: "VerdictStore | str | None") -> "VerdictStore | None":
    """Coerce a store argument: instance passes through, a string is a
    directory path, ``None`` stays ``None`` (no cross-process cache)."""
    if store is None or isinstance(store, VerdictStore):
        return store
    return VerdictStore(store)


__all__ = ["VerdictStore", "resolve_store"]
