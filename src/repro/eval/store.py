"""Cross-process on-disk caches: verdicts and compiled-sim plans.

The in-memory :class:`~repro.eval.pipeline.Evaluator` cache collapses
duplicate completions within one process, but every process-pool worker
(and every machine in a coordinated fleet) used to rebuild it from
scratch — the ROADMAP's "cross-process evaluator cache" opening.
:class:`VerdictStore` closes it: verdicts persist to a directory keyed
by ``(problem number, completion hash)``, one small JSON file per entry,
so any evaluator pointed at the same path — a later run, a sibling
worker process, a pull-based coordinator worker — skips the compile and
simulation entirely.

Both stores share one engine, :class:`KeyedJsonStore` — a
directory-backed ``key -> JSON payload`` map with atomic file writes, a
JSONL pack format, and compaction:

* :class:`VerdictStore` — ``p<problem>_<hash>.json`` files holding
  full :class:`~repro.eval.report.CompletionEvaluation` codecs;
* :class:`CompileSimCache` — ``s_<source-hash>.json`` files in a
  ``simcache/`` subdirectory holding the netlist→closure compiler's
  plan summary (:meth:`repro.verilog.codegen.CompiledEngine.plan`)
  keyed by bench-source hash, so repeat evaluations of a seen source
  skip the two-state proof and reuse recorded compile decisions.

The two stores are invisible to each other: entry filenames must match
the store's key pattern, so the simcache subdirectory and any foreign
``.json`` files are never counted, packed, or deleted by the verdict
store (and vice versa).

Concurrency model: writes go through a per-process temp file renamed
into place (``os.replace`` is atomic on POSIX and Windows), so readers
never observe a half-written entry.  Two processes racing on the same
uncached key may both evaluate and both write; evaluation is pure, so
the duplicate work is bounded and the last rename wins with an
identical payload.  Corrupt or foreign files read as misses.

One file per entry is simple but inode-hungry: a million-completion
sweep leaves a million tiny files behind.  :meth:`KeyedJsonStore.pack`
compacts the directory into one append-friendly JSONL file
(``pack.jsonl``, one ``{"key", <payload field>}`` object per line,
later lines win) that the store reads through transparently — fresh
entries still land as individual files (atomic, contention-free) and
shadow the pack, so packing is safe on a live store; run it again any
time to fold the new files in.  Because packing only appends, repeated
cycles leave shadowed duplicate lines behind —
:meth:`KeyedJsonStore.compact` rewrites the pack with one line per live
key (atomic replace, idempotent; safe against readers and file
writers, but do not run it while another process is packing the same
store).  :meth:`KeyedJsonStore.unpack` reverses packing.  The CLI
drives all three — ``python -m repro store {pack,compact,unpack} DIR``
— and applies pack/compact/clear to the verdict store and its attached
simcache together, so eviction shares one maintenance path.

The stores are picklable (they carry only their path), so
:class:`~repro.service.process.ProcessPoolSweepExecutor` ships them to
workers the same way it ships the backend.
"""

from __future__ import annotations

import json
import os
import re

from .export import evaluation_from_dict, evaluation_to_dict

PACK_FILENAME = "pack.jsonl"

#: verdict entry filenames: p<problem>_<16-hex-digit completion hash>
_ENTRY_RE = re.compile(r"^p\d{2,}_[0-9a-f]{16,}\.json$")

#: compiled-sim plan entry filenames: s_<16-hex-digit source hash>
_SIM_ENTRY_RE = re.compile(r"^s_[0-9a-f]{16,}\.json$")

#: subdirectory of a verdict store holding its compiled-sim plan cache
SIM_CACHE_DIRNAME = "simcache"


class KeyedJsonStore:
    """Directory-backed ``key -> JSON payload`` map with pack support.

    Subclasses pin down the key shape (:data:`ENTRY_RE`), the pack-line
    payload field name (:data:`PAYLOAD_FIELD`) and, optionally, a
    payload codec (:meth:`_encode_payload` / :meth:`_decode_payload`
    both default to identity on plain JSON objects).
    """

    #: filenames that belong to this store (everything else is foreign)
    ENTRY_RE: "re.Pattern[str]" = re.compile(r"^[A-Za-z0-9_]+\.json$")
    #: pack-line field carrying the payload (kept per-store for
    #: backward compatibility with packs written before the refactor)
    PAYLOAD_FIELD = "payload"

    def __init__(self, path: str):
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)
        # packed-index cache: (stat signature, {key -> payload row})
        self._packed: "tuple[tuple[int, int], dict[str, dict]] | None" = None

    def __getstate__(self) -> dict:
        return {"path": self.path}  # the index cache never crosses pickles

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._packed = None

    # ------------------------------------------------------------------
    # Payload codec (identity by default; rows must be JSON objects)
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_payload(payload) -> dict:
        return dict(payload)

    @staticmethod
    def _decode_payload(row: dict):
        return dict(row)

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    @property
    def pack_path(self) -> str:
        return os.path.join(self.path, PACK_FILENAME)

    # ------------------------------------------------------------------
    # Packed index (read-through; invalidated when the file changes)
    # ------------------------------------------------------------------
    def _packed_index(self) -> dict[str, dict]:
        """The pack file as key -> payload row ({} when absent).

        Cached per stat signature (mtime_ns, size), so a pack rewritten
        by another process — or by :meth:`pack` in this one — is picked
        up on the next read; corrupt lines read as misses.
        """
        try:
            stat = os.stat(self.pack_path)
            signature = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            self._packed = None
            return {}
        if self._packed is not None and self._packed[0] == signature:
            return self._packed[1]
        index: dict[str, dict] = {}
        try:
            with open(self.pack_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                        index[str(row["key"])] = dict(row[self.PAYLOAD_FIELD])
                    except (ValueError, KeyError, TypeError):
                        continue  # torn/foreign line: skip, keep reading
        except OSError:
            return {}
        self._packed = (signature, index)
        return index

    # ------------------------------------------------------------------
    def get_key(self, key: str):
        """The stored payload, or ``None`` (missing or unreadable).

        Individual files win over the pack: they are strictly newer
        (everything packed had its file deleted).
        """
        try:
            with open(self._path_for(key), encoding="utf-8") as handle:
                return self._decode_payload(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError):
            pass
        row = self._packed_index().get(key)
        if row is None:
            return None
        try:
            return self._decode_payload(row)
        except (ValueError, KeyError, TypeError):
            return None

    def put_key(self, key: str, payload) -> None:
        """Persist one payload atomically (temp file + rename)."""
        target = self._path_for(key)
        temp = f"{target}.tmp-{os.getpid()}"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(self._encode_payload(payload), handle)
            os.replace(temp, target)
        except OSError:
            # a read-only or vanished store degrades to a cache miss,
            # never a failed evaluation
            try:
                os.unlink(temp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Packing (inode hygiene for million-completion sweeps)
    # ------------------------------------------------------------------
    def _entry_files(self) -> list[str]:
        """Store-shaped entry filenames only: foreign ``.json`` files in
        the directory are invisible — never counted, packed, or
        deleted."""
        try:
            return sorted(
                name
                for name in os.listdir(self.path)
                if self.ENTRY_RE.match(name)
            )
        except OSError:
            return []

    def pack(self) -> int:
        """Fold every individual entry file into the pack; return count.

        Appends to an existing pack (later lines win on read, and an
        entry is immutable anyway), then deletes the folded files —
        crash-safe in that order: a death between append and unlink
        leaves both copies, which agree.  Only files that carry the
        store's key naming *and* decode as payloads are folded; torn or
        foreign files are left exactly where they are.
        """
        packed = 0
        with open(self.pack_path, "a", encoding="utf-8") as handle:
            for name in self._entry_files():
                entry = os.path.join(self.path, name)
                try:
                    with open(entry, encoding="utf-8") as source:
                        row = json.load(source)
                    self._decode_payload(row)  # must decode as a payload
                except (OSError, ValueError, KeyError, TypeError):
                    continue  # torn or foreign: leave the file alone
                handle.write(
                    json.dumps(
                        {"key": name[: -len(".json")],
                         self.PAYLOAD_FIELD: row}
                    )
                    + "\n"
                )
                handle.flush()
                try:
                    os.unlink(entry)
                except OSError:
                    pass
                packed += 1
        self._packed = None
        return packed

    def compact(self) -> int:
        """Rewrite the pack without dead lines; return how many died.

        :meth:`pack` only ever appends (later lines win on read), so a
        key re-packed across cycles leaves its shadowed older lines in
        the file forever — harmless for correctness, but the pack grows
        without bound under repeated pack cycles.  Compaction rewrites
        the pack with exactly one line per live key (torn/foreign lines
        are dropped too — the reader already ignores them) through a
        temp file + atomic replace, so a crash mid-compact leaves the
        previous pack intact.  Idempotent: a second run removes 0.

        Unlike :meth:`pack`, compaction is a maintenance operation: it
        is safe against concurrent *readers and file writers* (they
        never touch the pack), but must not race another process's
        ``pack()`` on the same store — lines pack appends after the
        compaction snapshot is read would be discarded by the replace,
        and pack has already unlinked their source files.  Run compact
        when nothing is packing.
        """
        index = self._packed_index()
        total_lines = 0
        try:
            with open(self.pack_path, encoding="utf-8") as handle:
                total_lines = sum(1 for line in handle if line.strip())
        except OSError:
            return 0  # no pack: nothing to compact
        removed = total_lines - len(index)
        if removed <= 0:
            return 0
        temp = f"{self.pack_path}.tmp-{os.getpid()}"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                for key, row in index.items():
                    handle.write(
                        json.dumps({"key": key, self.PAYLOAD_FIELD: row})
                        + "\n"
                    )
            os.replace(temp, self.pack_path)
        except OSError:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        self._packed = None
        return removed

    def unpack(self) -> int:
        """Materialize packed entries back into files; return count.

        Existing files win (they are newer); the pack is removed only
        once every entry has a file again — a partial restore (disk
        full, permissions) keeps the pack, so no entry is ever lost to
        an interrupted unpack.
        """
        index = self._packed_index()
        restored = 0
        failed = 0
        for key, row in index.items():
            target = os.path.join(self.path, f"{key}.json")
            if os.path.exists(target):
                continue
            temp = f"{target}.tmp-{os.getpid()}"
            try:
                with open(temp, "w", encoding="utf-8") as handle:
                    json.dump(row, handle)
                os.replace(temp, target)
                restored += 1
            except OSError:
                failed += 1
                try:
                    os.unlink(temp)
                except OSError:
                    pass
        if failed == 0:
            try:
                os.unlink(self.pack_path)
            except OSError:
                pass
        self._packed = None
        return restored

    # ------------------------------------------------------------------
    def keys(self) -> set[str]:
        """Every distinct entry key (files and pack combined)."""
        file_keys = {name[: -len(".json")] for name in self._entry_files()}
        return file_keys | set(self._packed_index())

    def __len__(self) -> int:
        return len(self.keys())

    def stats(self) -> dict:
        """Entry counts by storage form (the CLI ``store info`` view)."""
        files = len(self._entry_files())
        packed = len(self._packed_index())
        return {
            "entries": len(self),
            "files": files,
            "packed": packed,
            "pack_file": self.pack_path if packed else None,
        }

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed.

        The count reflects what actually disappeared: a key that
        survives — its file would not unlink, or it lives in a pack
        that would not unlink — is not counted as removed.
        """
        file_keys = {name[: -len(".json")] for name in self._entry_files()}
        packed_keys = set(self._packed_index())
        surviving: set[str] = set()
        for key in file_keys:
            try:
                os.unlink(os.path.join(self.path, f"{key}.json"))
            except OSError:
                surviving.add(key)
        try:
            os.unlink(self.pack_path)
        except FileNotFoundError:
            pass
        except OSError:
            surviving |= packed_keys  # the pack (and its keys) remain
        self._packed = None
        return len(file_keys | packed_keys) - len(surviving)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.path!r}, entries={len(self)})"


class CompileSimCache(KeyedJsonStore):
    """On-disk ``source hash -> compiled-sim plan`` cache.

    Lives in a ``simcache/`` subdirectory next to a
    :class:`VerdictStore`'s verdict files.  A plan is the JSON summary
    from :meth:`repro.verilog.codegen.CompiledEngine.plan`; a hit lets
    the evaluator rebuild the engine without re-running the two-state
    proof and counts into ``sim_compile_cache_hits_total``.
    """

    ENTRY_RE = _SIM_ENTRY_RE
    PAYLOAD_FIELD = "plan"

    @staticmethod
    def _key(source_hash: int) -> str:
        return f"s_{source_hash & (2 ** 64 - 1):016x}"

    def get(self, source_hash: int) -> dict | None:
        return self.get_key(self._key(source_hash))

    def put(self, source_hash: int, plan: dict) -> None:
        self.put_key(self._key(source_hash), plan)


class VerdictStore(KeyedJsonStore):
    """Directory-backed map of ``(problem, completion-hash) -> verdict``."""

    ENTRY_RE = _ENTRY_RE
    PAYLOAD_FIELD = "verdict"

    @staticmethod
    def _encode_payload(payload) -> dict:
        return evaluation_to_dict(payload)

    @staticmethod
    def _decode_payload(row: dict):
        return evaluation_from_dict(row)

    # ------------------------------------------------------------------
    @staticmethod
    def _key(problem: int, completion_hash: int) -> str:
        return f"p{problem:02d}_{completion_hash:016x}"

    @classmethod
    def _filename(cls, problem: int, completion_hash: int) -> str:
        return f"{cls._key(problem, completion_hash)}.json"

    def _entry_path(self, problem: int, completion_hash: int) -> str:
        return os.path.join(self.path, self._filename(problem, completion_hash))

    def get(self, problem: int, completion_hash: int):
        return self.get_key(self._key(problem, completion_hash))

    def put(self, problem: int, completion_hash: int, evaluation) -> None:
        self.put_key(self._key(problem, completion_hash), evaluation)

    # ------------------------------------------------------------------
    # Attached compiled-sim plan cache
    # ------------------------------------------------------------------
    @property
    def sim_cache_path(self) -> str:
        return os.path.join(self.path, SIM_CACHE_DIRNAME)

    def sim_cache(self, create: bool = True) -> "CompileSimCache | None":
        """The store's compiled-sim plan cache (``simcache/`` subdir).

        With ``create=False``, returns ``None`` unless the subdirectory
        already exists — the read-only view ``store info`` and the
        maintenance commands use, so inspecting a store never mutates
        it.
        """
        if not create and not os.path.isdir(self.sim_cache_path):
            return None
        try:
            return CompileSimCache(self.sim_cache_path)
        except OSError:
            return None


def resolve_store(store: "VerdictStore | str | None") -> "VerdictStore | None":
    """Coerce a store argument: instance passes through, a string is a
    directory path, ``None`` stays ``None`` (no cross-process cache)."""
    if store is None or isinstance(store, VerdictStore):
        return store
    return VerdictStore(store)


__all__ = [
    "PACK_FILENAME",
    "SIM_CACHE_DIRNAME",
    "CompileSimCache",
    "KeyedJsonStore",
    "VerdictStore",
    "resolve_store",
]
