"""Prompt engineering (the paper's stated future work, Sec. VI).

For problems 7, 9 and 12 the paper diagnoses *why* completions fail —
e.g. for the LFSR "the LLMs had trouble concatenating the most
significant bits with the feedback value ... a better prompt might yield
a correct result. This indicates the importance of creating the best
prompt, pointing to prompt engineering as future work."

This module implements that future work: targeted hint lines appended to
a prompt, phrased as the fix for the diagnosed failure mode.  Hinted
prompts are recognisable by the ``// hint:`` marker; the calibrated zoo
responds by lifting the per-problem hardness floor (a hinted model still
isn't perfect, but the failure is no longer certain), so the hinted-vs-
plain contrast can be measured with the regular pipeline.
"""

from __future__ import annotations

from ..problems import Problem, PromptLevel

HINT_MARKER = "// hint:"

# Problem-specific hints, written as the paper's failure analysis implies.
PROBLEM_HINTS: dict[int, str] = {
    7: (
        "// hint: shift out the MSB and concatenate the remaining bits with\n"
        "// hint: the feedback bit, i.e. q <= {q[3:0], feedback}.\n"
    ),
    9: (
        "// hint: cover every value of the shift amount, including zero;\n"
        "// hint: the rotated-out bits re-enter at the other end.\n"
    ),
    12: (
        "// hint: f is true exactly on rows 2, 3, 5 and 7; as a sum of\n"
        "// hint: products this is (~x3 & x2) | (x3 & x1).\n"
    ),
}

# Generic nudge used when no targeted hint exists.
GENERIC_HINT = "// hint: think step by step about each case before writing.\n"


def has_hint(prompt: str) -> bool:
    """Whether a prompt carries an engineering hint."""
    return HINT_MARKER in prompt


def hint_for(problem: Problem) -> str:
    """The hint text for one problem (targeted if available)."""
    return PROBLEM_HINTS.get(problem.number, GENERIC_HINT)


def engineered_prompt(problem: Problem, level: PromptLevel) -> str:
    """The level prompt with the problem's hint appended.

    The hint goes *after* the original prompt text so the zoo's
    level-detection (longest prefix match) still works — mirroring how a
    user would append clarification to a fixed benchmark prompt.
    """
    base = problem.prompt(level).rstrip("\n")
    return f"{base}\n{hint_for(problem)}"


def hint_coverage() -> dict[int, bool]:
    """{problem number: has targeted hint} for the whole problem set."""
    from ..problems import ALL_PROBLEMS

    return {p.number: p.number in PROBLEM_HINTS for p in ALL_PROBLEMS}
