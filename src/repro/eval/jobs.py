"""Job-based sweep service: planner and parallel executors.

The paper's Fig.-1 sweep is a cross product
(model x problem x level x temperature x n).  :class:`SweepPlanner`
expands a :class:`~repro.eval.harness.SweepConfig` into a flat list of
:class:`GenerationJob`s up front, consulting each backend's capability
claims so that unsupported combinations (e.g. J1's rejected n=25,
Sec. IV-B) become explicit :class:`SkippedJob` records instead of
silently swallowed exceptions.  :class:`SweepExecutor` then runs the
jobs — serially or through a ``concurrent.futures`` thread pool — against
a shared thread-safe :class:`~repro.eval.pipeline.Evaluator`, with
per-job error capture, a configurable :class:`RetryPolicy` for transient
backend failures, and progress callbacks.

Every executor implements the :class:`Executor` interface (``run(plan)
-> SweepResult``); :class:`~repro.service.process.ProcessPoolSweepExecutor`
is the process-pool variant for CPU-bound sweeps that the GIL would
otherwise serialize.  The job-level helpers (:func:`evaluate_job`,
:func:`run_job_with_retry`) are module-level functions so process
workers can share them with the thread pool.

Job expansion and result assembly both follow the legacy loop's nesting
order, so a parallel run produces byte-identical record lists to the old
serial harness (the acceptance parity check).
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..backends.base import Backend, BackendError
from ..models.base import Completion, GenerationConfig
from ..obs import REGISTRY, job_tags, observe_stage, record_span
from ..problems import Problem, PromptLevel, get_problem
from .harness import CompletionRecord, Sweep, SweepConfig
from .pipeline import Evaluator


@dataclass(frozen=True)
class GenerationJob:
    """One (model, problem, level, temperature, n) generation unit."""

    model: str
    base_model: str
    fine_tuned: bool
    problem: int
    level: PromptLevel
    temperature: float
    n: int
    max_tokens: int

    def generation_config(self) -> GenerationConfig:
        return GenerationConfig(
            temperature=self.temperature, n=self.n, max_tokens=self.max_tokens
        )


@dataclass(frozen=True)
class SkippedJob:
    """A combination the planner excluded, with the visible reason."""

    model: str
    problem: int
    level: PromptLevel
    temperature: float
    n: int
    reason: str


@dataclass(frozen=True)
class JobError:
    """A job that failed at runtime; the sweep carries on without it.

    ``attempts`` counts how many times the executor tried the job before
    giving up (1 unless a :class:`RetryPolicy` allowed retries).

    The structured fields classify the failure without string scraping:
    ``stage`` names where it died (``"backend"``, ``"parse"``,
    ``"elaborate"``, ``"analysis"``, ``"sim"``, ``"testbench"``, or
    ``""`` when unclassified), ``exception`` is the raising exception's
    class name, and ``line`` the source line when the Verilog frontend
    knew one.  ``code``/``path`` carry the netlist analyzer's finding
    code and hierarchical signal path for ``stage="analysis"`` failures
    (strict gate), empty otherwise.

    ``attempt_seconds`` is the per-attempt elapsed wall clock (one entry
    per attempt, in order) and ``backoff_seconds`` the total backoff the
    retry policy scheduled between them — together they make retry
    storms visible in traces instead of hiding behind a bare count.
    Both are observational wall-clock metadata and excluded from
    equality, so serial/sharded/streamed runs of the same plan still
    compare record-for-record identical (the parity invariant).
    """

    job: GenerationJob
    error: str
    attempts: int = 1
    stage: str = ""
    exception: str = ""
    line: int = 0
    code: str = ""
    path: str = ""
    attempt_seconds: tuple[float, ...] = field(default=(), compare=False)
    backoff_seconds: float = field(default=0.0, compare=False)


@dataclass(frozen=True)
class JobFailure:
    """Structured failure payload carried inside a :data:`JobOutcome`.

    Executors build one via :func:`failure_from_exception` instead of a
    bare message string, so :func:`assemble_result` can populate the
    structured :class:`JobError` fields.  Plain strings still work (the
    legacy outcome shape) and classify as stage ``""``.
    """

    message: str
    stage: str = ""
    exception: str = ""
    line: int = 0
    code: str = ""
    path: str = ""
    attempt_seconds: tuple[float, ...] = field(default=(), compare=False)
    backoff_seconds: float = field(default=0.0, compare=False)

    def __str__(self) -> str:
        return self.message


def failure_from_exception(exc: BaseException) -> JobFailure:
    """Classify an exception into a :class:`JobFailure`.

    Backend trouble maps to stage ``"backend"``; the Verilog frontend's
    exception hierarchy maps to its pipeline stage and carries the
    source line (plus finding code/path for the strict analysis gate).
    Anything else keeps stage ``""`` (unclassified).
    """
    from ..verilog.errors import (
        AnalysisError,
        ElaborationError,
        LexError,
        ParseError,
        SimulationError,
    )

    if isinstance(exc, BackendError):
        stage = "backend"
    elif isinstance(exc, (LexError, ParseError)):
        stage = "parse"
    elif isinstance(exc, ElaborationError):
        stage = "elaborate"
    elif isinstance(exc, AnalysisError):
        stage = "analysis"
    elif isinstance(exc, SimulationError):
        stage = "sim"
    else:
        stage = ""
    return JobFailure(
        message=f"{type(exc).__name__}: {exc}",
        stage=stage,
        exception=type(exc).__name__,
        line=int(getattr(exc, "line", 0) or 0),
        code=str(getattr(exc, "code", "") or ""),
        path=str(getattr(exc, "path", "") or ""),
    )


def make_job_error(
    job: GenerationJob, failure: "JobFailure | str", attempts: int
) -> JobError:
    """A :class:`JobError` from either outcome failure shape."""
    if isinstance(failure, JobFailure):
        return JobError(
            job=job,
            error=failure.message,
            attempts=attempts,
            stage=failure.stage,
            exception=failure.exception,
            line=failure.line,
            code=failure.code,
            path=failure.path,
            attempt_seconds=failure.attempt_seconds,
            backoff_seconds=failure.backoff_seconds,
        )
    return JobError(job=job, error=str(failure), attempts=attempts)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry transient backend failures with deterministic backoff.

    Only :class:`~repro.backends.base.BackendError` is considered
    transient (a flaky remote endpoint); anything else — evaluator bugs,
    invalid configs — fails the job on the first attempt.  The delay
    before retry ``k`` (1-based) is
    ``backoff_seconds * backoff_multiplier ** (k - 1)``; executors take
    an injectable ``sleep`` so tests can assert the schedule without
    waiting it out.
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1:
            raise ValueError("backoff_multiplier must be >= 1")

    def delay(self, failures: int) -> float:
        """Seconds to wait after the ``failures``-th failed attempt."""
        return self.backoff_seconds * self.backoff_multiplier ** (failures - 1)


@dataclass
class SweepPlan:
    """Planner output: what will run and what was skipped, and why."""

    jobs: list[GenerationJob] = field(default_factory=list)
    skipped: list[SkippedJob] = field(default_factory=list)
    config: SweepConfig = field(default_factory=SweepConfig)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def completions_planned(self) -> int:
        return sum(job.n for job in self.jobs)

    def subset(
        self,
        job_indices: Sequence[int],
        skip_indices: Sequence[int] = (),
    ) -> SweepPlan:
        """A sub-plan holding the selected jobs/skips (the shard hook).

        Indices are positions into ``jobs``/``skipped``; the sub-plan
        preserves their relative order, so executing it yields records
        in the same order a serial run would produce for those jobs.
        """
        return SweepPlan(
            jobs=[self.jobs[i] for i in job_indices],
            skipped=[self.skipped[i] for i in skip_indices],
            config=self.config,
        )


class SweepPlanner:
    """Expand a :class:`SweepConfig` into a flat job list for a backend."""

    def __init__(self, backend: Backend):
        self.backend = backend

    def plan(
        self,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
    ) -> SweepPlan:
        """Jobs for ``models`` (default: everything the backend serves).

        Expansion follows the legacy harness nesting order — model,
        problem, level, temperature, n — so executor output stays
        record-for-record comparable with the old serial loop.
        """
        config = config or SweepConfig()
        names = list(models) if models is not None else self.backend.models()
        plan = SweepPlan(config=config)
        problems = config.problems()
        for name in names:
            capabilities = self.backend.capabilities(name)
            base_model, fine_tuned = self.backend.identity(name)
            max_tokens = min(config.max_tokens, capabilities.max_tokens)
            for problem in problems:
                for level in config.levels:
                    for temperature in config.temperatures:
                        for n in config.completions_per_prompt:
                            reason = self._unsupported_reason(
                                name, capabilities, temperature, n, max_tokens
                            )
                            if reason is not None:
                                plan.skipped.append(
                                    SkippedJob(
                                        model=name,
                                        problem=problem.number,
                                        level=level,
                                        temperature=temperature,
                                        n=n,
                                        reason=reason,
                                    )
                                )
                                continue
                            plan.jobs.append(
                                GenerationJob(
                                    model=name,
                                    base_model=base_model,
                                    fine_tuned=fine_tuned,
                                    problem=problem.number,
                                    level=level,
                                    temperature=temperature,
                                    n=n,
                                    max_tokens=max_tokens,
                                )
                            )
        return plan

    @staticmethod
    def _unsupported_reason(
        model: str,
        capabilities,
        temperature: float,
        n: int,
        max_tokens: int,
    ) -> str | None:
        if n == 25 and not capabilities.supports_n25:
            return f"{model} does not support n=25 (paper Sec. IV-B)"
        try:
            GenerationConfig(temperature=temperature, n=n, max_tokens=max_tokens)
        except ValueError as exc:
            return str(exc)
        return None


ProgressCallback = Callable[[int, int, GenerationJob], None]

#: (records, failure or None, attempts) for one executed job.  The
#: failure slot holds a :class:`JobFailure` (structured) or a plain
#: message string (legacy); ``None`` means the job succeeded.
JobOutcome = tuple[list[CompletionRecord], "JobFailure | str | None", int]


@dataclass
class SweepResult:
    """Executor output: records plus everything that did not happen."""

    sweep: Sweep
    skipped: list[SkippedJob] = field(default_factory=list)
    errors: list[JobError] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.sweep)


# ----------------------------------------------------------------------
# Job-level helpers (module-level so process-pool workers can use them)
# ----------------------------------------------------------------------
def evaluate_completions(
    evaluator: Evaluator, job: GenerationJob, completions: list[Completion]
) -> list[CompletionRecord]:
    """Push one job's completions through the evaluator into records."""
    problem = get_problem(job.problem)
    records = []
    for index, completion in enumerate(completions):
        outcome = evaluator.evaluate(problem, completion.text, job.level)
        records.append(
            CompletionRecord(
                model=job.model,
                base_model=job.base_model,
                fine_tuned=job.fine_tuned,
                problem=problem.number,
                difficulty=problem.difficulty,
                level=job.level,
                temperature=job.temperature,
                n=job.n,
                sample_index=index,
                compiled=outcome.compiled,
                passed=outcome.passed,
                inference_seconds=completion.inference_seconds,
            )
        )
    return records


def evaluate_job(
    backend: Backend, evaluator: Evaluator, job: GenerationJob
) -> list[CompletionRecord]:
    """Generate and evaluate one job (no error capture)."""
    problem = get_problem(job.problem)
    started = time.perf_counter()
    completions = backend.generate(
        job.model, problem.prompt(job.level), job.generation_config()
    )
    observe_stage(
        "generate",
        time.perf_counter() - started,
        problem=job.problem,
        model=job.model,
    )
    return evaluate_completions(evaluator, job, completions)


def run_job_with_retry(
    backend: Backend,
    evaluator: Evaluator,
    job: GenerationJob,
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> JobOutcome:
    """Run one job under a retry policy; never raises.

    Each job runs inside its own trace context (:func:`job_tags`), so
    every span recorded below — generation, evaluator stages, repair
    rounds — carries the job's model/problem.  Attempt wall clock and
    scheduled backoff land on the :class:`JobFailure` (and from there
    the :class:`JobError`), and the whole job feeds the always-on
    ``job_seconds`` latency histogram.
    """
    retry = retry or RetryPolicy()
    attempt_seconds: list[float] = []
    backoff_total = 0.0
    job_started = time.perf_counter()
    outcome: JobOutcome | None = None
    with job_tags(model=job.model, problem=job.problem):
        for attempt in range(1, retry.max_attempts + 1):
            attempt_started = time.perf_counter()
            try:
                records = evaluate_job(backend, evaluator, job)
                attempt_seconds.append(time.perf_counter() - attempt_started)
                outcome = (records, None, attempt)
                break
            except BackendError as exc:  # transient: retry with backoff
                attempt_seconds.append(time.perf_counter() - attempt_started)
                if attempt < retry.max_attempts:
                    delay = retry.delay(attempt)
                    backoff_total += delay
                    if delay > 0:
                        sleep(delay)
                    continue
                outcome = ([], _timed_failure(
                    exc, attempt_seconds, backoff_total), attempt)
                break
            except Exception as exc:  # noqa: BLE001 — per-job isolation
                attempt_seconds.append(time.perf_counter() - attempt_started)
                outcome = ([], _timed_failure(
                    exc, attempt_seconds, backoff_total), attempt)
                break
    assert outcome is not None
    elapsed = time.perf_counter() - job_started
    REGISTRY.observe("job_seconds", elapsed)
    record_span(
        "job",
        elapsed,
        model=job.model,
        problem=job.problem,
        level=str(job.level.value),
        outcome="error" if outcome[1] is not None else "ok",
        attempts=outcome[2],
    )
    return outcome


def _timed_failure(
    exc: BaseException, attempt_seconds: Sequence[float], backoff: float
) -> JobFailure:
    """Classify ``exc`` and attach the retry-loop timing observations."""
    failure = failure_from_exception(exc)
    return replace(
        failure,
        attempt_seconds=tuple(attempt_seconds),
        backoff_seconds=backoff,
    )


def chunk_jobs(
    jobs: Sequence[GenerationJob], batch_size: int
) -> list[list[GenerationJob]]:
    """Split jobs into consecutive same-model runs of at most ``batch_size``.

    Shared by every batching executor (thread and async), so both send
    identical groups through :meth:`Backend.generate_batch` and stay
    record-for-record comparable.
    """
    chunks: list[list[GenerationJob]] = []
    for job in jobs:
        if (
            chunks
            and chunks[-1][0].model == job.model
            and len(chunks[-1]) < batch_size
        ):
            chunks[-1].append(job)
        else:
            chunks.append([job])
    return chunks


def assemble_result(
    plan: SweepPlan, outcomes: Sequence[JobOutcome], stats: dict
) -> SweepResult:
    """Zip plan-ordered outcomes back into a :class:`SweepResult`."""
    sweep = Sweep()
    errors: list[JobError] = []
    attempts_total = 0
    for job, (records, failure, attempts) in zip(plan.jobs, outcomes):
        attempts_total += attempts
        if failure is not None:
            errors.append(make_job_error(job, failure, attempts))
        else:
            sweep.extend(records)
    stats = dict(stats)
    stats.update(
        jobs=len(plan.jobs),
        jobs_failed=len(errors),
        jobs_skipped=len(plan.skipped),
        records=len(sweep),
        attempts=attempts_total,
    )
    return SweepResult(
        sweep=sweep, skipped=list(plan.skipped), errors=errors, stats=stats
    )


class Executor(abc.ABC):
    """Common interface every sweep executor variant implements."""

    @abc.abstractmethod
    def run(self, plan: SweepPlan) -> SweepResult:
        """Execute every job; capture per-job failures instead of dying."""


class SweepExecutor(Executor):
    """Run a :class:`SweepPlan` through a thread pool.

    ``workers <= 1`` runs the jobs inline; anything higher fans out over
    a thread pool (generation and evaluation are pure Python but the
    evaluator cache is shared and thread-safe, so identical completions
    are only compiled once across the whole pool).  Results are
    reassembled in plan order regardless of completion order.

    ``batch_size > 1`` groups consecutive same-model jobs and sends each
    group through :meth:`~repro.backends.base.Backend.generate_batch`,
    letting backends amortize per-request overhead; a failing batch
    falls back to per-job execution so error isolation (and the retry
    policy) still applies job by job.
    """

    def __init__(
        self,
        backend: Backend,
        evaluator: Evaluator | None = None,
        workers: int = 1,
        progress: ProgressCallback | None = None,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        batch_size: int = 1,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.backend = backend
        self.evaluator = evaluator or Evaluator()
        self.workers = workers
        self.progress = progress
        self.retry = retry or RetryPolicy()
        self.sleep = sleep
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    def _run_job(self, job: GenerationJob) -> list[CompletionRecord]:
        return evaluate_job(self.backend, self.evaluator, job)

    def _run_chunk(self, jobs: Sequence[GenerationJob]) -> list[JobOutcome]:
        """One work unit: a run of consecutive same-model jobs."""
        if len(jobs) > 1:
            problems = [get_problem(job.problem) for job in jobs]
            try:
                batches = self.backend.generate_batch(
                    jobs[0].model,
                    [
                        (problem.prompt(job.level), job.generation_config())
                        for job, problem in zip(jobs, problems)
                    ],
                )
            except Exception:  # noqa: BLE001 — retry job by job instead
                batches = None
            if batches is not None and len(batches) == len(jobs):
                outcomes: list[JobOutcome] = []
                for job, completions in zip(jobs, batches):
                    try:
                        records = evaluate_completions(
                            self.evaluator, job, completions
                        )
                        outcomes.append((records, None, 1))
                    except Exception as exc:  # noqa: BLE001
                        outcomes.append(([], failure_from_exception(exc), 1))
                return outcomes
        return [
            run_job_with_retry(
                self.backend, self.evaluator, job, self.retry, self.sleep
            )
            for job in jobs
        ]

    def _chunks(self, plan: SweepPlan) -> list[list[GenerationJob]]:
        """Split the plan into consecutive same-model runs of batch_size."""
        return chunk_jobs(plan.jobs, self.batch_size)

    def run(self, plan: SweepPlan) -> SweepResult:
        """Execute every job; capture per-job failures instead of dying."""
        started = time.perf_counter()
        total = len(plan.jobs)
        done = 0
        done_lock = threading.Lock()

        def attempt(jobs: list[GenerationJob]) -> list[JobOutcome]:
            nonlocal done
            outcomes = self._run_chunk(jobs)
            if self.progress is not None:
                with done_lock:
                    for job in jobs:
                        done += 1
                        self.progress(done, total, job)
            return outcomes

        chunks = self._chunks(plan)
        if self.workers == 1:
            chunk_outcomes = [attempt(chunk) for chunk in chunks]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                chunk_outcomes = list(pool.map(attempt, chunks))

        outcomes = [outcome for chunk in chunk_outcomes for outcome in chunk]
        return assemble_result(
            plan,
            outcomes,
            stats={
                "backend": self.backend.name,
                "executor": "thread",
                "workers": self.workers,
                "batch_size": self.batch_size,
                "evaluator_cache": dict(self.evaluator.cache_info),
                "elapsed_seconds": time.perf_counter() - started,
            },
        )


def execute_sweep(
    backend: Backend,
    config: SweepConfig | None = None,
    models: Sequence[str] | None = None,
    evaluator: Evaluator | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
    retry: RetryPolicy | None = None,
    batch_size: int = 1,
) -> SweepResult:
    """Plan + execute in one call (the common path for the facade)."""
    plan = SweepPlanner(backend).plan(config, models=models)
    executor = SweepExecutor(
        backend,
        evaluator=evaluator,
        workers=workers,
        progress=progress,
        retry=retry,
        batch_size=batch_size,
    )
    return executor.run(plan)
