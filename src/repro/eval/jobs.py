"""Job-based sweep service: planner and parallel executor.

The paper's Fig.-1 sweep is a cross product
(model x problem x level x temperature x n).  :class:`SweepPlanner`
expands a :class:`~repro.eval.harness.SweepConfig` into a flat list of
:class:`GenerationJob`s up front, consulting each backend's capability
claims so that unsupported combinations (e.g. J1's rejected n=25,
Sec. IV-B) become explicit :class:`SkippedJob` records instead of
silently swallowed exceptions.  :class:`SweepExecutor` then runs the
jobs — serially or through a ``concurrent.futures`` thread pool — against
a shared thread-safe :class:`~repro.eval.pipeline.Evaluator`, with
per-job error capture and progress callbacks.

Job expansion and result assembly both follow the legacy loop's nesting
order, so a parallel run produces byte-identical record lists to the old
serial harness (the acceptance parity check).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..backends.base import Backend
from ..models.base import GenerationConfig
from ..problems import Problem, PromptLevel, get_problem
from .harness import CompletionRecord, Sweep, SweepConfig
from .pipeline import Evaluator


@dataclass(frozen=True)
class GenerationJob:
    """One (model, problem, level, temperature, n) generation unit."""

    model: str
    base_model: str
    fine_tuned: bool
    problem: int
    level: PromptLevel
    temperature: float
    n: int
    max_tokens: int

    def generation_config(self) -> GenerationConfig:
        return GenerationConfig(
            temperature=self.temperature, n=self.n, max_tokens=self.max_tokens
        )


@dataclass(frozen=True)
class SkippedJob:
    """A combination the planner excluded, with the visible reason."""

    model: str
    problem: int
    level: PromptLevel
    temperature: float
    n: int
    reason: str


@dataclass(frozen=True)
class JobError:
    """A job that failed at runtime; the sweep carries on without it."""

    job: GenerationJob
    error: str


@dataclass
class SweepPlan:
    """Planner output: what will run and what was skipped, and why."""

    jobs: list[GenerationJob] = field(default_factory=list)
    skipped: list[SkippedJob] = field(default_factory=list)
    config: SweepConfig = field(default_factory=SweepConfig)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def completions_planned(self) -> int:
        return sum(job.n for job in self.jobs)


class SweepPlanner:
    """Expand a :class:`SweepConfig` into a flat job list for a backend."""

    def __init__(self, backend: Backend):
        self.backend = backend

    def plan(
        self,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
    ) -> SweepPlan:
        """Jobs for ``models`` (default: everything the backend serves).

        Expansion follows the legacy harness nesting order — model,
        problem, level, temperature, n — so executor output stays
        record-for-record comparable with the old serial loop.
        """
        config = config or SweepConfig()
        names = list(models) if models is not None else self.backend.models()
        plan = SweepPlan(config=config)
        problems = config.problems()
        for name in names:
            capabilities = self.backend.capabilities(name)
            base_model, fine_tuned = self.backend.identity(name)
            max_tokens = min(config.max_tokens, capabilities.max_tokens)
            for problem in problems:
                for level in config.levels:
                    for temperature in config.temperatures:
                        for n in config.completions_per_prompt:
                            reason = self._unsupported_reason(
                                name, capabilities, temperature, n, max_tokens
                            )
                            if reason is not None:
                                plan.skipped.append(
                                    SkippedJob(
                                        model=name,
                                        problem=problem.number,
                                        level=level,
                                        temperature=temperature,
                                        n=n,
                                        reason=reason,
                                    )
                                )
                                continue
                            plan.jobs.append(
                                GenerationJob(
                                    model=name,
                                    base_model=base_model,
                                    fine_tuned=fine_tuned,
                                    problem=problem.number,
                                    level=level,
                                    temperature=temperature,
                                    n=n,
                                    max_tokens=max_tokens,
                                )
                            )
        return plan

    @staticmethod
    def _unsupported_reason(
        model: str,
        capabilities,
        temperature: float,
        n: int,
        max_tokens: int,
    ) -> str | None:
        if n == 25 and not capabilities.supports_n25:
            return f"{model} does not support n=25 (paper Sec. IV-B)"
        try:
            GenerationConfig(temperature=temperature, n=n, max_tokens=max_tokens)
        except ValueError as exc:
            return str(exc)
        return None


ProgressCallback = Callable[[int, int, GenerationJob], None]


@dataclass
class SweepResult:
    """Executor output: records plus everything that did not happen."""

    sweep: Sweep
    skipped: list[SkippedJob] = field(default_factory=list)
    errors: list[JobError] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.sweep)


class SweepExecutor:
    """Run a :class:`SweepPlan` through a worker pool.

    ``workers <= 1`` runs the jobs inline; anything higher fans out over
    a thread pool (generation and evaluation are pure Python but the
    evaluator cache is shared and thread-safe, so identical completions
    are only compiled once across the whole pool).  Results are
    reassembled in plan order regardless of completion order.
    """

    def __init__(
        self,
        backend: Backend,
        evaluator: Evaluator | None = None,
        workers: int = 1,
        progress: ProgressCallback | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.backend = backend
        self.evaluator = evaluator or Evaluator()
        self.workers = workers
        self.progress = progress

    # ------------------------------------------------------------------
    def _run_job(self, job: GenerationJob) -> list[CompletionRecord]:
        problem = get_problem(job.problem)
        prompt = problem.prompt(job.level)
        completions = self.backend.generate(
            job.model, prompt, job.generation_config()
        )
        records = []
        for index, completion in enumerate(completions):
            outcome = self.evaluator.evaluate(problem, completion.text, job.level)
            records.append(
                CompletionRecord(
                    model=job.model,
                    base_model=job.base_model,
                    fine_tuned=job.fine_tuned,
                    problem=problem.number,
                    difficulty=problem.difficulty,
                    level=job.level,
                    temperature=job.temperature,
                    n=job.n,
                    sample_index=index,
                    compiled=outcome.compiled,
                    passed=outcome.passed,
                    inference_seconds=completion.inference_seconds,
                )
            )
        return records

    def run(self, plan: SweepPlan) -> SweepResult:
        """Execute every job; capture per-job failures instead of dying."""
        started = time.perf_counter()
        total = len(plan.jobs)
        done = 0
        done_lock = threading.Lock()

        def attempt(job: GenerationJob):
            nonlocal done
            try:
                outcome: tuple = (self._run_job(job), None)
            except Exception as exc:  # noqa: BLE001 — per-job isolation
                outcome = ([], f"{type(exc).__name__}: {exc}")
            if self.progress is not None:
                with done_lock:
                    done += 1
                    self.progress(done, total, job)
            return outcome

        if self.workers == 1:
            outcomes = [attempt(job) for job in plan.jobs]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(attempt, plan.jobs))

        sweep = Sweep()
        errors: list[JobError] = []
        for job, (records, error) in zip(plan.jobs, outcomes):
            if error is not None:
                errors.append(JobError(job=job, error=error))
            else:
                sweep.extend(records)
        return SweepResult(
            sweep=sweep,
            skipped=list(plan.skipped),
            errors=errors,
            stats={
                "backend": self.backend.name,
                "workers": self.workers,
                "jobs": total,
                "jobs_failed": len(errors),
                "jobs_skipped": len(plan.skipped),
                "records": len(sweep),
                "evaluator_cache": dict(self.evaluator.cache_info),
                "elapsed_seconds": time.perf_counter() - started,
            },
        )


def execute_sweep(
    backend: Backend,
    config: SweepConfig | None = None,
    models: Sequence[str] | None = None,
    evaluator: Evaluator | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
) -> SweepResult:
    """Plan + execute in one call (the common path for the facade)."""
    plan = SweepPlanner(backend).plan(config, models=models)
    executor = SweepExecutor(
        backend, evaluator=evaluator, workers=workers, progress=progress
    )
    return executor.run(plan)
