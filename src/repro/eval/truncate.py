"""Completion truncation (paper Sec. IV, step 7 of Fig. 1).

"The LLM-produced code completions on the problem are then truncated at
keywords ``end`` and ``endmodule``" — i.e. everything after the module's
closing keyword (explanatory prose, further modules, repeated prompts) is
discarded before compilation.
"""

from __future__ import annotations

import re

_ENDMODULE_RE = re.compile(r"\bendmodule\b")


def truncate_completion(text: str) -> str:
    """Keep the completion up to and including the first ``endmodule``.

    A completion with no ``endmodule`` is returned unchanged (it will fail
    the compile gate on its own).
    """
    match = _ENDMODULE_RE.search(text)
    if match is None:
        return text
    return text[: match.end()]


def has_endmodule(text: str) -> bool:
    return _ENDMODULE_RE.search(text) is not None
