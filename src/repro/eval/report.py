"""Assemble the paper's tables and figures from a sweep (Sec. V).

Every public function returns plain data structures (dicts keyed the way
the paper's tables are laid out) plus an ASCII rendering helper, so the
benchmark harness can print the same rows/series the paper reports and
EXPERIMENTS.md can record paper-vs-measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.calibration import COMPILE_RATES, FUNCTIONAL_RATES
from ..problems import Difficulty, PromptLevel
from .harness import Sweep
from .metrics import mean

_MODEL_ORDER = (
    "megatron-355m",
    "codegen-2b",
    "codegen-6b",
    "j1-large-7b",
    "codegen-16b",
    "code-davinci-002",
)

_DIFFICULTIES = (Difficulty.BASIC, Difficulty.INTERMEDIATE, Difficulty.ADVANCED)
_LEVELS = (PromptLevel.LOW, PromptLevel.MEDIUM, PromptLevel.HIGH)


def _variants_in(sweep: Sweep) -> list[tuple[str, bool, str]]:
    """(base_model, fine_tuned, variant_name) present, in Table order."""
    seen: dict[tuple[str, bool], str] = {}
    for record in sweep.records:
        seen.setdefault((record.base_model, record.fine_tuned), record.model)
    ordered = []
    for base in _MODEL_ORDER:
        for fine_tuned in (False, True):
            if (base, fine_tuned) in seen:
                ordered.append((base, fine_tuned, seen[(base, fine_tuned)]))
    # any models outside Table I (e.g. the trainable substrates) go last
    for (base, fine_tuned), name in seen.items():
        if base not in _MODEL_ORDER:
            ordered.append((base, fine_tuned, name))
    return ordered


# ----------------------------------------------------------------------
# Table III — compile Pass@(scenario*10)
# ----------------------------------------------------------------------
def table3(sweep: Sweep, n: int = 10) -> dict:
    """{(base, fine_tuned): {difficulty: measured compile rate}}."""
    table: dict[tuple[str, bool], dict[Difficulty, float]] = {}
    for base, fine_tuned, name in _variants_in(sweep):
        row: dict[Difficulty, float] = {}
        for difficulty in _DIFFICULTIES:
            per_level = []
            for level in _LEVELS:
                _, rate = sweep.best_temperature(
                    name, difficulty, level, n, metric="compiled"
                )
                per_level.append(rate)
            row[difficulty] = mean(per_level)
        table[(base, fine_tuned)] = row
    return table


def render_table3(table: dict, reference: bool = True) -> str:
    """ASCII rendering, with the paper's values alongside when known."""
    lines = [
        "Table III — Pass@(scenario*10), compiled completions",
        f"{'Model':<18} {'Type':<4} {'Basic':>14} {'Intermed':>14} {'Advanced':>14}",
    ]
    for (base, fine_tuned), row in table.items():
        cells = []
        for difficulty in _DIFFICULTIES:
            measured = row[difficulty]
            ref = COMPILE_RATES.get((base, fine_tuned), {}).get(difficulty)
            if reference and ref is not None:
                cells.append(f"{measured:.3f} ({ref:.3f})")
            else:
                cells.append(f"{measured:.3f}")
        kind = "FT" if fine_tuned else "PT"
        lines.append(
            f"{base:<18} {kind:<4} {cells[0]:>14} {cells[1]:>14} {cells[2]:>14}"
        )
    lines.append("(measured (paper))" if reference else "")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table IV — functional Pass@(scenario*10) + inference time
# ----------------------------------------------------------------------
def table4(sweep: Sweep, n: int = 10) -> dict:
    """{(base, ft): {"time": s, difficulty: {level: rate}}}."""
    table: dict = {}
    for base, fine_tuned, name in _variants_in(sweep):
        row: dict = {"time": sweep.mean_inference_seconds(name)}
        for difficulty in _DIFFICULTIES:
            row[difficulty] = {}
            for level in _LEVELS:
                _, rate = sweep.best_temperature(
                    name, difficulty, level, n, metric="passed"
                )
                row[difficulty][level] = rate
        table[(base, fine_tuned)] = row
    return table


def render_table4(table: dict, reference: bool = True) -> str:
    header = (
        f"{'Model':<18} {'Type':<4} {'Time(s)':>8} "
        + " ".join(
            f"{d.value[:5]}-{lv.value:>1}" + "      "
            for d in _DIFFICULTIES
            for lv in _LEVELS
        )
    )
    lines = [
        "Table IV — Pass@(scenario*10), test-bench passing completions",
        header,
    ]
    for (base, fine_tuned), row in table.items():
        cells = []
        for difficulty in _DIFFICULTIES:
            for level in _LEVELS:
                measured = row[difficulty][level]
                ref = (
                    FUNCTIONAL_RATES.get((base, fine_tuned), {})
                    .get(difficulty, {})
                    .get(level)
                )
                if reference and ref is not None:
                    cells.append(f"{measured:.3f}({ref:.3f})")
                else:
                    cells.append(f"{measured:.3f}")
        kind = "FT" if fine_tuned else "PT"
        lines.append(
            f"{base:<18} {kind:<4} {row['time']:>8.3f} " + " ".join(cells)
        )
    lines.append("(measured(paper))" if reference else "")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Fig. 6 — pass rate vs temperature and vs n
# ----------------------------------------------------------------------
def fig6_temperature(sweep: Sweep, n: int = 10) -> dict[str, dict[float, float]]:
    """{model: {temperature: overall pass rate}} (left panel)."""
    series: dict[str, dict[float, float]] = {}
    for model in sweep.model_names():
        series[model] = {}
        for t in sweep.temperatures():
            slice_ = sweep.filter(model=model, temperature=t, n=n)
            if slice_:
                series[model][t] = Sweep.rate(slice_, "passed")
    return series


def fig6_completions(sweep: Sweep) -> dict[str, dict[int, float]]:
    """{model: {n: best-t overall pass rate}} (right panel)."""
    series: dict[str, dict[int, float]] = {}
    ns = sorted({r.n for r in sweep.records})
    for model in sweep.model_names():
        series[model] = {}
        for n in ns:
            rates = []
            for difficulty in _DIFFICULTIES:
                for level in _LEVELS:
                    _, rate = sweep.best_temperature(
                        model, difficulty, level, n, metric="passed"
                    )
                    rates.append(rate)
            if any(sweep.filter(model=model, n=n)):
                series[model][n] = mean(rates)
    return series


# ----------------------------------------------------------------------
# Fig. 7 — pass rate vs difficulty and vs description level
# ----------------------------------------------------------------------
def fig7_difficulty(sweep: Sweep, n: int = 10) -> dict[str, dict[Difficulty, float]]:
    """{model: {difficulty: best-t pass rate}} (right panel)."""
    series: dict[str, dict[Difficulty, float]] = {}
    for model in sweep.model_names():
        series[model] = {}
        for difficulty in _DIFFICULTIES:
            rates = [
                sweep.best_temperature(model, difficulty, level, n)[1]
                for level in _LEVELS
            ]
            series[model][difficulty] = mean(rates)
    return series


def fig7_levels(sweep: Sweep, n: int = 10) -> dict[str, dict[PromptLevel, float]]:
    """{model: {level: best-t pass rate}} (left panel)."""
    series: dict[str, dict[PromptLevel, float]] = {}
    for model in sweep.model_names():
        series[model] = {}
        for level in _LEVELS:
            rates = [
                sweep.best_temperature(model, difficulty, level, n)[1]
                for difficulty in _DIFFICULTIES
            ]
            series[model][level] = mean(rates)
    return series


def render_series(title: str, series: dict, x_format=str) -> str:
    """ASCII rendering of a {model: {x: rate}} family of curves."""
    lines = [title]
    for model, curve in sorted(series.items()):
        points = "  ".join(
            f"{x_format(x)}:{rate:.3f}" for x, rate in sorted(curve.items(), key=lambda kv: str(kv[0]))
        )
        lines.append(f"  {model:<24} {points}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Headline numbers (Sec. VI / VII)
# ----------------------------------------------------------------------
@dataclass
class Headline:
    """The paper's summary statistics, measured on a sweep."""

    pt_compile_mean: float  # paper: 0.119
    ft_compile_mean: float  # paper: 0.646
    pt_functional_mean: float  # paper: 0.0109
    ft_functional_mean: float  # paper: 0.270
    best_ft_overall: float  # codegen-16b FT, paper: 0.419
    codex_overall: float  # code-davinci-002, paper: 0.354
    paper_reference: dict = field(
        default_factory=lambda: {
            "pt_compile_mean": 0.119,
            "ft_compile_mean": 0.646,
            "pt_functional_mean": 0.0109,
            "ft_functional_mean": 0.270,
            "best_ft_overall": 0.419,
            "codex_overall": 0.354,
        }
    )


def headline_numbers(sweep: Sweep, n: int = 10) -> Headline:
    """Compute the Sec. VI/VII aggregates (codex excluded from PT/FT means,
    matching how the paper's 11.9%/64.6%/1.09%/27.0% figures are formed)."""
    compile_table = table3(sweep, n)
    functional_table = table4(sweep, n)

    def cells3(fine_tuned: bool) -> list[float]:
        return [
            rate
            for (base, ft), row in compile_table.items()
            if ft == fine_tuned and base != "code-davinci-002"
            and base in _MODEL_ORDER
            for rate in row.values()
        ]

    def cells4(fine_tuned: bool) -> list[float]:
        return [
            rate
            for (base, ft), row in functional_table.items()
            if ft == fine_tuned and base != "code-davinci-002"
            and base in _MODEL_ORDER
            for difficulty in _DIFFICULTIES
            for rate in row[difficulty].values()
        ]

    def overall(base: str, fine_tuned: bool) -> float:
        row = functional_table.get((base, fine_tuned))
        if row is None:
            return 0.0
        return mean(
            [
                row[difficulty][level]
                for difficulty in _DIFFICULTIES
                for level in _LEVELS
            ]
        )

    return Headline(
        pt_compile_mean=mean(cells3(False)),
        ft_compile_mean=mean(cells3(True)),
        pt_functional_mean=mean(cells4(False)),
        ft_functional_mean=mean(cells4(True)),
        best_ft_overall=overall("codegen-16b", True),
        codex_overall=overall("code-davinci-002", False),
    )


def render_headline(headline: Headline) -> str:
    ref = headline.paper_reference
    rows = [
        ("PT compile mean", headline.pt_compile_mean, ref["pt_compile_mean"]),
        ("FT compile mean", headline.ft_compile_mean, ref["ft_compile_mean"]),
        ("PT functional mean", headline.pt_functional_mean, ref["pt_functional_mean"]),
        ("FT functional mean", headline.ft_functional_mean, ref["ft_functional_mean"]),
        ("CodeGen-16B FT overall", headline.best_ft_overall, ref["best_ft_overall"]),
        ("code-davinci-002 overall", headline.codex_overall, ref["codex_overall"]),
    ]
    lines = ["Headline numbers (Sec. VI/VII)",
             f"{'metric':<26} {'measured':>9} {'paper':>9}"]
    for label, measured, paper in rows:
        lines.append(f"{label:<26} {measured:>9.3f} {paper:>9.3f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Per-problem failure analysis (Sec. VI)
# ----------------------------------------------------------------------
def per_problem_pass_counts(sweep: Sweep, model: str) -> dict[int, tuple[int, int]]:
    """{problem number: (passes, completions)} for one model variant."""
    out: dict[int, tuple[int, int]] = {}
    for record in sweep.filter(model=model):
        passes, total = out.get(record.problem, (0, 0))
        out[record.problem] = (passes + record.passed, total + 1)
    return dict(sorted(out.items()))
