"""Pass@(scenario*n) and pass@k metrics (paper Sec. V-B).

The paper characterizes performance "with the Pass@k metric, where k is
the number of problems in a scenario times n" — i.e. the *fraction* of
generated completions that pass the gate (compilation for Table III,
functional tests for Table IV).  The unbiased Codex pass@k estimator is
also provided for downstream use.
"""

from __future__ import annotations

from math import comb


def pass_fraction(outcomes: list[bool]) -> float:
    """Pass@(scenario*n): fraction of completions passing the gate."""
    if not outcomes:
        return 0.0
    return sum(outcomes) / len(outcomes)


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased pass@k estimator from the Codex paper (Chen et al. 2021).

    Probability that at least one of k samples drawn (without
    replacement) from n generated completions, c of which are correct,
    passes.
    """
    if not 0 <= c <= n:
        raise ValueError("need 0 <= c <= n")
    if k < 1 or k > n:
        raise ValueError("need 1 <= k <= n")
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0


def pass_at_k_by_problem(records, k: int = 1) -> float:
    """Mean per-problem pass@k over a sweep's completion records.

    Records are grouped by problem number; each group contributes the
    Codex estimator over its (n, c) with ``k`` clamped to the group's
    sample count.  Duck-typed: any record with ``.problem`` and
    ``.passed`` works (a :class:`CompletionRecord` does).
    """
    if k < 1:
        raise ValueError("need k >= 1")
    groups: dict[int, list[bool]] = {}
    for record in records:
        groups.setdefault(record.problem, []).append(bool(record.passed))
    return mean(
        [
            pass_at_k(len(outcomes), sum(outcomes), min(k, len(outcomes)))
            for outcomes in groups.values()
        ]
    )


def repair_budget_curve(sweeps_by_budget, k: int = 1) -> list[dict]:
    """Pass@k-vs-repair-budget rows for the agentic repair workload.

    ``sweeps_by_budget`` maps a repair budget (int, number of repair
    rounds allowed per sample) to the completion records of the sweep
    run at that budget.  Returns one row per budget, sorted ascending:
    ``budget``, ``k``, ``records``, ``pass_rate`` (pass fraction),
    ``compile_rate``, ``pass_at_k`` (per-problem mean), ``lift``
    (pass@k minus the lowest budget's pass@k) and ``lift_per_budget``
    (lift divided by budget delta; 0.0 on the base row).
    """
    rows: list[dict] = []
    base_budget: int | None = None
    base_pass_at_k = 0.0
    for budget in sorted(sweeps_by_budget):
        records = list(sweeps_by_budget[budget])
        score = pass_at_k_by_problem(records, k) if records else 0.0
        if base_budget is None:
            base_budget, base_pass_at_k = budget, score
        lift = score - base_pass_at_k
        delta = budget - base_budget
        rows.append(
            {
                "budget": budget,
                "k": k,
                "records": len(records),
                "pass_rate": pass_fraction(
                    [bool(r.passed) for r in records]
                ),
                "compile_rate": pass_fraction(
                    [bool(r.compiled) for r in records]
                ),
                "pass_at_k": score,
                "lift": lift,
                "lift_per_budget": lift / delta if delta > 0 else 0.0,
            }
        )
    return rows
