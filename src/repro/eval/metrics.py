"""Pass@(scenario*n) and pass@k metrics (paper Sec. V-B).

The paper characterizes performance "with the Pass@k metric, where k is
the number of problems in a scenario times n" — i.e. the *fraction* of
generated completions that pass the gate (compilation for Table III,
functional tests for Table IV).  The unbiased Codex pass@k estimator is
also provided for downstream use.
"""

from __future__ import annotations

from math import comb


def pass_fraction(outcomes: list[bool]) -> float:
    """Pass@(scenario*n): fraction of completions passing the gate."""
    if not outcomes:
        return 0.0
    return sum(outcomes) / len(outcomes)


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased pass@k estimator from the Codex paper (Chen et al. 2021).

    Probability that at least one of k samples drawn (without
    replacement) from n generated completions, c of which are correct,
    passes.
    """
    if not 0 <= c <= n:
        raise ValueError("need 0 <= c <= n")
    if k < 1 or k > n:
        raise ValueError("need 1 <= k <= n")
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0
