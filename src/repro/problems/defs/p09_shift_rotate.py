"""Problem 9 (Intermediate): shift left and rotate.

The paper (Sec. VI) reports completions "either do not cover all values of
the shift or assign incorrect bit positions" — mirrored in the variants.
"""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This module shifts left or rotates left an 8-bit input.
module shift_rotate(input [7:0] in, input [2:0] amount, input mode, output reg [7:0] out);
"""

_MEDIUM = _LOW + """\
// When mode is 0, out is in shifted left by amount bits (zero fill).
// When mode is 1, out is in rotated left by amount bits.
"""

_HIGH = _MEDIUM + """\
// Combinational logic (always @(*)):
//   if mode == 0: out = in << amount
//   else: out = (in << amount) | (in >> (8 - amount))
// Note the rotate by 0 must leave the input unchanged.
"""

CANONICAL = """\
  always @(*) begin
    if (mode == 1'b0) out = in << amount;
    else begin
      if (amount == 3'd0) out = in;
      else out = (in << amount) | (in >> (4'd8 - {1'b0, amount}));
    end
  end
endmodule
"""

TESTBENCH = """\
module tb;
  reg [7:0] in;
  reg [2:0] amount;
  reg mode;
  wire [7:0] out;
  reg [7:0] expected;
  reg [15:0] doubled;
  integer errors;
  integer a;
  integer v;
  shift_rotate dut(.in(in), .amount(amount), .mode(mode), .out(out));
  initial begin
    errors = 0;
    for (v = 0; v < 4; v = v + 1) begin
      in = (v == 0) ? 8'hA5 : (v == 1) ? 8'h01 : (v == 2) ? 8'hFF : 8'h3C;
      for (a = 0; a < 8; a = a + 1) begin
        amount = a[2:0];
        mode = 0; #1;
        expected = in << amount;
        if (out !== expected) begin
          $display("FAIL shl in=%h amount=%0d out=%h expected=%h", in, amount, out, expected);
          errors = errors + 1;
        end
        mode = 1; #1;
        doubled = {in, in} << amount;
        expected = doubled[15:8];
        if (out !== expected) begin
          $display("FAIL rot in=%h amount=%0d out=%h expected=%h", in, amount, out, expected);
          errors = errors + 1;
        end
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="off_by_one_positions",
        body="""\
  always @(*) begin
    if (mode == 1'b0) out = in << amount;
    else out = (in << amount) | (in >> (4'd7 - {1'b0, amount}));
  end
endmodule
""",
        description="assigns incorrect bit positions in the wrap-around term",
    ),
    WrongVariant(
        name="rotate_right",
        body="""\
  always @(*) begin
    if (mode == 1'b0) out = in << amount;
    else begin
      if (amount == 3'd0) out = in;
      else out = (in >> amount) | (in << (4'd8 - {1'b0, amount}));
    end
  end
endmodule
""",
        description="rotates right instead of left",
    ),
    WrongVariant(
        name="shift_is_rotate",
        body="""\
  always @(*) begin
    if (amount == 3'd0) out = in;
    else out = (in << amount) | (in >> (4'd8 - {1'b0, amount}));
  end
endmodule
""",
        description="always rotates, ignoring the mode input",
    ),
)

PROBLEM = Problem(
    number=9,
    slug="shift_rotate",
    title="Shift left and rotate",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="shift_rotate",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
