"""Problem 8 (Intermediate): FSM with two states."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a finite state machine with two states.
module fsm_two(input clk, input reset, input in, output reg out);
  reg state;
  parameter A = 0, B = 1;
"""

_MEDIUM = _LOW + """\
// The FSM starts in state A after reset (active high).
// When in is 1 the FSM toggles between states A and B, otherwise it stays.
// The output out is 1 exactly when the FSM is in state B.
"""

_HIGH = _MEDIUM + """\
// On every positive edge of clk:
//   if reset is high, state <= A
//   else if in is 1 and state is A, state <= B
//   else if in is 1 and state is B, state <= A
//   else state keeps its value
// assign out = 1 when state == B else 0 (combinational).
"""

CANONICAL = """\
  always @(posedge clk) begin
    if (reset) state <= A;
    else if (in) state <= (state == A) ? B : A;
  end
  always @(state)
    out = (state == B);
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, reset, in;
  wire out;
  reg expected_state;
  integer errors;
  integer i;
  reg [7:0] stimulus;
  fsm_two dut(.clk(clk), .reset(reset), .in(in), .out(out));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; reset = 1; in = 0;
    @(posedge clk); #1;
    if (out !== 1'b0) begin $display("FAIL reset out=%b", out); errors = errors + 1; end
    reset = 0;
    expected_state = 1'b0;
    stimulus = 8'b1101_0110;
    for (i = 0; i < 8; i = i + 1) begin
      in = stimulus[i];
      @(posedge clk); #1;
      if (in) expected_state = ~expected_state;
      if (out !== expected_state) begin
        $display("FAIL step=%0d in=%b out=%b expected=%b", i, in, out, expected_state);
        errors = errors + 1;
      end
    end
    reset = 1;
    @(posedge clk); #1;
    if (out !== 1'b0) begin $display("FAIL re-reset out=%b", out); errors = errors + 1; end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="stuck_toggle",
        body="""\
  always @(posedge clk) begin
    if (reset) state <= A;
    else state <= (state == A) ? B : A;
  end
  always @(state)
    out = (state == B);
endmodule
""",
        description="toggles every cycle regardless of the input",
    ),
    WrongVariant(
        name="inverted_output",
        body="""\
  always @(posedge clk) begin
    if (reset) state <= A;
    else if (in) state <= (state == A) ? B : A;
  end
  always @(state)
    out = (state == A);
endmodule
""",
        description="asserts the output in state A instead of B",
    ),
    WrongVariant(
        name="no_reset",
        body="""\
  always @(posedge clk) begin
    if (in) state <= (state == A) ? B : A;
  end
  always @(state)
    out = (state == B);
endmodule
""",
        description="ignores reset so the state starts unknown",
    ),
)

PROBLEM = Problem(
    number=8,
    slug="fsm_two_states",
    title="FSM with two states",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="fsm_two",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
