"""Problem 13 (Advanced): signed 8-bit adder with overflow."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a signed 8-bit adder with overflow detection.
module signed_adder(input [7:0] a, input [7:0] b, output [7:0] s, output overflow);
"""

_MEDIUM = _LOW + """\
// s is the sum of the two's-complement inputs a and b.
// overflow is 1 when the signed addition overflows the 8-bit result.
"""

_HIGH = _MEDIUM + """\
// Signed overflow happens when both operands have the same sign and the
// sum has a different sign:
//   s = a + b
//   overflow = (a[7] == b[7]) && (s[7] != a[7])
"""

CANONICAL = """\
  assign s = a + b;
  assign overflow = (a[7] == b[7]) && (s[7] != a[7]);
endmodule
"""

TESTBENCH = """\
module tb;
  reg [7:0] a, b;
  wire [7:0] s;
  wire overflow;
  reg [7:0] expected_sum;
  reg expected_ovf;
  integer errors;
  integer i;
  reg [7:0] av [0:7];
  reg [7:0] bv [0:7];
  signed_adder dut(.a(a), .b(b), .s(s), .overflow(overflow));
  initial begin
    errors = 0;
    av[0] = 8'd3;    bv[0] = 8'd4;      // 7, no overflow
    av[1] = 8'd100;  bv[1] = 8'd100;    // 200 > 127, overflow
    av[2] = 8'h80;   bv[2] = 8'h80;     // -128 + -128, overflow
    av[3] = 8'hFF;   bv[3] = 8'h01;     // -1 + 1 = 0, no overflow
    av[4] = 8'h7F;   bv[4] = 8'h01;     // 127 + 1, overflow
    av[5] = 8'h80;   bv[5] = 8'h7F;     // -128 + 127 = -1, no overflow
    av[6] = 8'hC0;   bv[6] = 8'hC0;     // -64 + -64 = -128, no overflow
    av[7] = 8'hC0;   bv[7] = 8'hBF;     // -64 + -65 = -129, overflow
    for (i = 0; i < 8; i = i + 1) begin
      a = av[i]; b = bv[i]; #1;
      expected_sum = a + b;
      expected_ovf = (a[7] == b[7]) && (expected_sum[7] != a[7]);
      if (s !== expected_sum || overflow !== expected_ovf) begin
        $display("FAIL a=%h b=%h s=%h ovf=%b expected s=%h ovf=%b",
                 a, b, s, overflow, expected_sum, expected_ovf);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="carry_as_overflow",
        body="""\
  wire [8:0] wide;
  assign wide = a + b;
  assign s = wide[7:0];
  assign overflow = wide[8];
endmodule
""",
        description="reports the unsigned carry-out as signed overflow",
    ),
    WrongVariant(
        name="no_overflow",
        body="""\
  assign s = a + b;
  assign overflow = 1'b0;
endmodule
""",
        description="never flags overflow",
    ),
    WrongVariant(
        name="inverted_condition",
        body="""\
  assign s = a + b;
  assign overflow = (a[7] != b[7]) && (s[7] == a[7]);
endmodule
""",
        description="overflow condition inverted",
    ),
)

PROBLEM = Problem(
    number=13,
    slug="signed_adder",
    title="Signed 8-bit adder with overflow",
    difficulty=Difficulty.ADVANCED,
    module_name="signed_adder",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
