"""Problem 3 (Basic): a 3-bit priority encoder (paper Fig. 2)."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a 3-bit priority encoder. It outputs the position of the first high bit.
module priority_encoder(input [2:0] in, output reg [1:0] pos);
"""

_MEDIUM = _LOW + """\
// If none of the input bits are high (i.e., input is zero), output zero.
// assign the position of the highest-priority (lowest-index) high bit of in to pos.
"""

_HIGH = _MEDIUM + """\
// If in[0] is high, pos is 0.
// Else if in[1] is high, pos is 1.
// Else if in[2] is high, pos is 2.
// Else pos is 0.
"""

CANONICAL = """\
  always @(in)
    if (in == 0) pos = 2'h0;
    else if (in[0]) pos = 2'h0;
    else if (in[1]) pos = 2'h1;
    else pos = 2'h2;
endmodule
"""

TESTBENCH = """\
module tb;
  reg [2:0] in;
  wire [1:0] pos;
  reg [1:0] expected;
  integer errors;
  integer i;
  priority_encoder dut(.in(in), .pos(pos));
  initial begin
    errors = 0;
    for (i = 0; i < 8; i = i + 1) begin
      in = i[2:0]; #1;
      if (in[0]) expected = 2'd0;
      else if (in[1]) expected = 2'd1;
      else if (in[2]) expected = 2'd2;
      else expected = 2'd0;
      if (pos !== expected) begin
        $display("FAIL in=%b pos=%d expected=%d", in, pos, expected);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    # The paper's Fig. 2c: a case table whose positions are offset by one.
    WrongVariant(
        name="offset_by_one",
        body="""\
  always @(in) begin
    case (in)
      3'b000: pos = 2'b00;
      3'b001: pos = 2'b01;
      3'b010: pos = 2'b10;
      3'b011: pos = 2'b11;
      default: pos = 2'b00;
    endcase
  end
endmodule
""",
        description="paper Fig. 2c: positions offset by 1",
    ),
    WrongVariant(
        name="highest_bit_priority",
        body="""\
  always @(in)
    if (in[2]) pos = 2'h2;
    else if (in[1]) pos = 2'h1;
    else pos = 2'h0;
endmodule
""",
        description="gives priority to the highest bit instead of the lowest",
    ),
    WrongVariant(
        name="missing_zero_case",
        body="""\
  always @(in)
    if (in[0]) pos = 2'h0;
    else if (in[1]) pos = 2'h1;
    else pos = 2'h2;
endmodule
""",
        description="reports position 2 when the input is all zero",
    ),
)

PROBLEM = Problem(
    number=3,
    slug="priority_encoder",
    title="A 3-bit priority encoder",
    difficulty=Difficulty.BASIC,
    module_name="priority_encoder",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
