"""Problem 2 (Basic): a 2-input and gate."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a 2-input and gate.
module and_gate(input a, input b, output out);
"""

_MEDIUM = _LOW + """\
// The output out is the logical AND of inputs a and b.
"""

_HIGH = _MEDIUM + """\
// Use a continuous assignment.
// out is 1 only when both a and b are 1, otherwise out is 0.
"""

CANONICAL = """\
  assign out = a & b;
endmodule
"""

TESTBENCH = """\
module tb;
  reg a, b;
  wire out;
  integer errors;
  integer i;
  and_gate dut(.a(a), .b(b), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[1]; b = i[0]; #1;
      if (out !== (a & b)) begin
        $display("FAIL a=%b b=%b out=%b", a, b, out);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="or_gate",
        body="""\
  assign out = a | b;
endmodule
""",
        description="implements OR instead of AND",
    ),
    WrongVariant(
        name="nand_gate",
        body="""\
  assign out = ~(a & b);
endmodule
""",
        description="implements NAND instead of AND",
    ),
    WrongVariant(
        name="passthrough_a",
        body="""\
  assign out = a;
endmodule
""",
        description="ignores the second input",
    ),
)

PROBLEM = Problem(
    number=2,
    slug="and_gate",
    title="A 2-input and gate",
    difficulty=Difficulty.BASIC,
    module_name="and_gate",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
