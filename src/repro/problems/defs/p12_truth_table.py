"""Problem 12 (Intermediate): implement a function given by a truth table.

Paper Sec. VI: completions were "close to the actual solution by using all
input values in assign statements but fail to form correct expressions
between input bits" — the variants reproduce that.
"""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This module implements the 3-input boolean function f described by a truth table.
module truth_table(input x3, input x2, input x1, output f);
"""

_MEDIUM = _LOW + """\
// The truth table (inputs ordered x3 x2 x1) is:
//  x3 x2 x1 | f
//   0  0  0 | 0
//   0  0  1 | 0
//   0  1  0 | 1
//   0  1  1 | 1
//   1  0  0 | 0
//   1  0  1 | 1
//   1  1  0 | 0
//   1  1  1 | 1
"""

_HIGH = _MEDIUM + """\
// f is 1 for input rows 2, 3, 5 and 7.
// In sum-of-products form: f = (~x3 & x2) | (x3 & x1).
"""

CANONICAL = """\
  assign f = (~x3 & x2) | (x3 & x1);
endmodule
"""

TESTBENCH = """\
module tb;
  reg x3, x2, x1;
  wire f;
  reg expected;
  reg [7:0] table_rows;
  integer errors;
  integer i;
  truth_table dut(.x3(x3), .x2(x2), .x1(x1), .f(f));
  initial begin
    errors = 0;
    table_rows = 8'b10101100;  // row i (x3x2x1 = i) -> table_rows[i]
    for (i = 0; i < 8; i = i + 1) begin
      x3 = i[2]; x2 = i[1]; x1 = i[0];
      #1;
      expected = table_rows[i];
      if (f !== expected) begin
        $display("FAIL x3=%b x2=%b x1=%b f=%b expected=%b", x3, x2, x1, f, expected);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="wrong_expression",
        body="""\
  assign f = (x3 & x2) | (~x3 & x1);
endmodule
""",
        description="uses all inputs but the product terms are wrong",
    ),
    WrongVariant(
        name="missing_minterm",
        body="""\
  assign f = (~x3 & x2 & ~x1) | (x3 & x1);
endmodule
""",
        description="drops row 3 from the sum of products",
    ),
    WrongVariant(
        name="xor_guess",
        body="""\
  assign f = x3 ^ x2 ^ x1;
endmodule
""",
        description="guesses parity instead of the table",
    ),
)

PROBLEM = Problem(
    number=12,
    slug="truth_table",
    title="Truth table",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="truth_table",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
