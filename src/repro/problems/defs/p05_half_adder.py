"""Problem 5 (Intermediate): a half adder."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a half adder.
module half_adder(input a, input b, output sum, output cout);
"""

_MEDIUM = _LOW + """\
// sum is the single-bit sum of a and b; cout is the carry out.
"""

_HIGH = _MEDIUM + """\
// sum is the exclusive-or of a and b.
// cout is the logical and of a and b.
"""

CANONICAL = """\
  assign sum = a ^ b;
  assign cout = a & b;
endmodule
"""

TESTBENCH = """\
module tb;
  reg a, b;
  wire sum, cout;
  integer errors;
  integer i;
  half_adder dut(.a(a), .b(b), .sum(sum), .cout(cout));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[0]; b = i[1]; #1;
      if ({cout, sum} !== a + b) begin
        $display("FAIL a=%b b=%b sum=%b cout=%b", a, b, sum, cout);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="swapped_outputs",
        body="""\
  assign sum = a & b;
  assign cout = a ^ b;
endmodule
""",
        description="sum and carry expressions swapped",
    ),
    WrongVariant(
        name="or_carry",
        body="""\
  assign sum = a ^ b;
  assign cout = a | b;
endmodule
""",
        description="carry uses OR instead of AND",
    ),
)

PROBLEM = Problem(
    number=5,
    slug="half_adder",
    title="A half adder",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="half_adder",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
