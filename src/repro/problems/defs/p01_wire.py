"""Problem 1 (Basic): a simple wire."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a simple wire. It connects the input to the output.
module simple_wire(input in, output out);
"""

_MEDIUM = _LOW + """\
// The output out is driven by the input in.
"""

_HIGH = _MEDIUM + """\
// Use a continuous assignment.
// assign the value of in to out.
"""

CANONICAL = """\
  assign out = in;
endmodule
"""

TESTBENCH = """\
module tb;
  reg in;
  wire out;
  integer errors;
  simple_wire dut(.in(in), .out(out));
  initial begin
    errors = 0;
    in = 0; #1;
    if (out !== 1'b0) begin $display("FAIL in=0 out=%b", out); errors = errors + 1; end
    in = 1; #1;
    if (out !== 1'b1) begin $display("FAIL in=1 out=%b", out); errors = errors + 1; end
    in = 0; #1;
    if (out !== 1'b0) begin $display("FAIL in=0 out=%b", out); errors = errors + 1; end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="inverted",
        body="""\
  assign out = ~in;
endmodule
""",
        description="drives the complement instead of the value",
    ),
    WrongVariant(
        name="constant_zero",
        body="""\
  assign out = 1'b0;
endmodule
""",
        description="ties the output low",
    ),
)

PROBLEM = Problem(
    number=1,
    slug="simple_wire",
    title="A simple wire",
    difficulty=Difficulty.BASIC,
    module_name="simple_wire",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
