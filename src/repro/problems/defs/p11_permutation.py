"""Problem 11 (Intermediate): permutation of input bits."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This module applies a fixed permutation to its 8-bit input.
module permutation(input [7:0] in, output [7:0] out);
"""

_MEDIUM = _LOW + """\
// The output bits are a rearrangement of the input bits:
// out[7]=in[1], out[6]=in[6], out[5]=in[2], out[4]=in[0],
// out[3]=in[4], out[2]=in[7], out[1]=in[5], out[0]=in[3].
"""

_HIGH = _MEDIUM + """\
// Use a single continuous assignment with a concatenation:
// assign out = {in[1], in[6], in[2], in[0], in[4], in[7], in[5], in[3]};
"""

CANONICAL = """\
  assign out = {in[1], in[6], in[2], in[0], in[4], in[7], in[5], in[3]};
endmodule
"""

TESTBENCH = """\
module tb;
  reg [7:0] in;
  wire [7:0] out;
  reg [7:0] expected;
  integer errors;
  integer i;
  permutation dut(.in(in), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 256; i = i + 16) begin
      in = i[7:0] ^ 8'h5A;
      #1;
      expected = {in[1], in[6], in[2], in[0], in[4], in[7], in[5], in[3]};
      if (out !== expected) begin
        $display("FAIL in=%b out=%b expected=%b", in, out, expected);
        errors = errors + 1;
      end
    end
    in = 8'b10110010; #1;
    expected = {in[1], in[6], in[2], in[0], in[4], in[7], in[5], in[3]};
    if (out !== expected) begin
      $display("FAIL in=%b out=%b expected=%b", in, out, expected);
      errors = errors + 1;
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="reversed",
        body="""\
  assign out = {in[0], in[1], in[2], in[3], in[4], in[5], in[6], in[7]};
endmodule
""",
        description="simple bit reversal instead of the required permutation",
    ),
    WrongVariant(
        name="two_swapped",
        body="""\
  assign out = {in[1], in[6], in[2], in[0], in[4], in[7], in[3], in[5]};
endmodule
""",
        description="last two lanes swapped",
    ),
    WrongVariant(
        name="identity",
        body="""\
  assign out = in;
endmodule
""",
        description="passes the input through unpermuted",
    ),
)

PROBLEM = Problem(
    number=11,
    slug="permutation",
    title="Permutation",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="permutation",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
