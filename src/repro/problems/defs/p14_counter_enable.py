"""Problem 14 (Advanced): counter with enable signal."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a 4-bit counter with an enable signal.
module counter_enable(input clk, input reset, input ena, output reg [3:0] q);
"""

_MEDIUM = _LOW + """\
// On the positive edge of clk, if reset is high q is cleared to 0.
// Otherwise, when ena is high q increments by 1 (wrapping from 15 to 0).
// When ena is low q holds its value.
"""

_HIGH = _MEDIUM + """\
// On every positive edge of clk:
//   if reset is high, q <= 0
//   else if ena is high, q <= q + 1
//   else q <= q
"""

CANONICAL = """\
  always @(posedge clk) begin
    if (reset) q <= 4'd0;
    else if (ena) q <= q + 4'd1;
  end
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, reset, ena;
  wire [3:0] q;
  reg [3:0] expected;
  integer errors;
  integer i;
  reg [19:0] ena_pattern;
  counter_enable dut(.clk(clk), .reset(reset), .ena(ena), .q(q));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; reset = 1; ena = 0;
    @(posedge clk); #1;
    if (q !== 4'd0) begin $display("FAIL reset q=%d", q); errors = errors + 1; end
    reset = 0;
    expected = 4'd0;
    ena_pattern = 20'b1101_1110_0101_1111_1010;
    for (i = 0; i < 20; i = i + 1) begin
      ena = ena_pattern[i];
      @(posedge clk); #1;
      if (ena) expected = expected + 4'd1;
      if (q !== expected) begin
        $display("FAIL step=%0d ena=%b q=%d expected=%d", i, ena, q, expected);
        errors = errors + 1;
      end
    end
    // hold with enable low for several cycles
    ena = 0;
    for (i = 0; i < 3; i = i + 1) begin
      @(posedge clk); #1;
      if (q !== expected) begin
        $display("FAIL hold q=%d expected=%d", q, expected);
        errors = errors + 1;
      end
    end
    reset = 1;
    @(posedge clk); #1;
    if (q !== 4'd0) begin $display("FAIL re-reset q=%d", q); errors = errors + 1; end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="ignores_enable",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule
""",
        description="counts every cycle regardless of ena",
    ),
    WrongVariant(
        name="enable_gates_reset",
        body="""\
  always @(posedge clk) begin
    if (ena) begin
      if (reset) q <= 4'd0;
      else q <= q + 4'd1;
    end
  end
endmodule
""",
        description="reset only works while enabled",
    ),
    WrongVariant(
        name="resets_to_one",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 4'd1;
    else if (ena) q <= q + 4'd1;
  end
endmodule
""",
        description="resets to 1 instead of 0",
    ),
)

PROBLEM = Problem(
    number=14,
    slug="counter_enable",
    title="Counter with enable signal",
    difficulty=Difficulty.ADVANCED,
    module_name="counter_enable",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
