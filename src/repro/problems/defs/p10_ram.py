"""Problem 10 (Intermediate): Random Access Memory.

Paper Sec. IV-C: "for the RAM module, the data width is 8 and the address
width is 6 in the prompt" and the test bench is unit-test style rather
than exhaustive (2^14 inputs would be too slow) — ours follows suit.
"""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a random access memory with 64 entries of 8 bits.
module ram(input clk, input we, input [5:0] addr, input [7:0] data_in, output reg [7:0] data_out);
  reg [7:0] mem [0:63];
"""

_MEDIUM = _LOW + """\
// On the positive edge of clk, when we is high, data_in is written to mem at addr.
// On the positive edge of clk, data_out is updated with the contents of mem at addr.
"""

_HIGH = _MEDIUM + """\
// On every positive edge of clk:
//   if we is high: mem[addr] <= data_in
//   data_out <= mem[addr]
// The read returns the OLD contents when a write to the same address
// happens in the same cycle (read-before-write).
"""

CANONICAL = """\
  always @(posedge clk) begin
    data_out <= mem[addr];
    if (we) mem[addr] <= data_in;
  end
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, we;
  reg [5:0] addr;
  reg [7:0] data_in;
  wire [7:0] data_out;
  integer errors;
  integer i;
  ram dut(.clk(clk), .we(we), .addr(addr), .data_in(data_in), .data_out(data_out));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; we = 0; addr = 0; data_in = 0;
    // write a pattern to 8 locations
    we = 1;
    for (i = 0; i < 8; i = i + 1) begin
      addr = i[5:0] * 7;
      data_in = i[7:0] + 8'h10;
      @(posedge clk); #1;
    end
    we = 0;
    // read the pattern back
    for (i = 0; i < 8; i = i + 1) begin
      addr = i[5:0] * 7;
      @(posedge clk); #1;
      if (data_out !== i[7:0] + 8'h10) begin
        $display("FAIL read addr=%d data_out=%h expected=%h", addr, data_out, i[7:0] + 8'h10);
        errors = errors + 1;
      end
    end
    // overwrite one location and check
    we = 1; addr = 6'd14; data_in = 8'hAB;
    @(posedge clk); #1;
    we = 0;
    @(posedge clk); #1;
    if (data_out !== 8'hAB) begin
      $display("FAIL overwrite data_out=%h expected=ab", data_out);
      errors = errors + 1;
    end
    // check another location is untouched
    addr = 6'd21;
    @(posedge clk); #1;
    if (data_out !== 8'h13) begin
      $display("FAIL untouched data_out=%h expected=13", data_out);
      errors = errors + 1;
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="write_only",
        body="""\
  always @(posedge clk) begin
    if (we) mem[addr] <= data_in;
  end
endmodule
""",
        description="never drives the read port",
    ),
    WrongVariant(
        name="reads_data_in",
        body="""\
  always @(posedge clk) begin
    data_out <= data_in;
    if (we) mem[addr] <= data_in;
  end
endmodule
""",
        description="forwards the write data instead of reading memory",
    ),
    WrongVariant(
        name="writes_when_not_enabled",
        body="""\
  always @(posedge clk) begin
    data_out <= mem[addr];
    mem[addr] <= data_in;
  end
endmodule
""",
        description="ignores the write enable",
    ),
)

PROBLEM = Problem(
    number=10,
    slug="ram",
    title="Random Access Memory",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="ram",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
