"""Problem 15 (Advanced): FSM that recognizes the sequence 101 (Fig. 5).

The prompt follows the paper's Fig. 5 text literally, including its
quirk: from S1 on x=1 the next state is IDLE (not S1).  The test bench
checks the specification exactly as prompted, mirroring the paper's
observation that "the exact test-bench implementation can have a large
impact on how many cases pass".
"""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a finite state machine that recognizes the sequence 101 on the input signal x.
module adv_fsm(input clk, input reset, input x, output z);
  reg [1:0] present_state, next_state;
  parameter IDLE=0, S1=1, S10=2, S101=3;
"""

_MEDIUM = _LOW + """\
// output signal z is asserted to 1 when present_state is S101
// present_state is reset to IDLE when reset is high,
// otherwise it is assigned next_state
"""

_HIGH = _MEDIUM + """\
// if present_state is IDLE, next_state is assigned S1 if
// x is 1, otherwise next_state stays at IDLE
// if present_state is S1, next_state is assigned S10 if
// x is 0, otherwise next_state stays at IDLE
// if present_state is S10, next_state is assigned S101 if
// x is 1, otherwise next_state stays at IDLE
// if present_state is S101, next_state is assigned IDLE
"""

CANONICAL = """\
  assign z = (present_state == S101);
  always @(posedge clk) begin
    if (reset) present_state <= IDLE;
    else present_state <= next_state;
  end
  always @(present_state or x) begin
    case (present_state)
      IDLE: next_state = x ? S1 : IDLE;
      S1: next_state = x ? IDLE : S10;
      S10: next_state = x ? S101 : IDLE;
      S101: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, reset, x;
  wire z;
  reg [1:0] model_state;
  reg expected_z;
  reg [15:0] stimulus;
  integer errors;
  integer i;
  adv_fsm dut(.clk(clk), .reset(reset), .x(x), .z(z));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; reset = 1; x = 0;
    @(posedge clk); #1;
    if (z !== 1'b0) begin $display("FAIL reset z=%b", z); errors = errors + 1; end
    reset = 0;
    model_state = 2'd0;
    stimulus = 16'b1010_0110_1101_1010;
    for (i = 0; i < 16; i = i + 1) begin
      x = stimulus[i];
      @(posedge clk); #1;
      // reference next-state function per the specification
      case (model_state)
        2'd0: model_state = x ? 2'd1 : 2'd0;
        2'd1: model_state = x ? 2'd0 : 2'd2;
        2'd2: model_state = x ? 2'd3 : 2'd0;
        2'd3: model_state = 2'd0;
      endcase
      expected_z = (model_state == 2'd3);
      if (z !== expected_z) begin
        $display("FAIL step=%0d x=%b z=%b expected=%b", i, x, z, expected_z);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="moore_stays_s1",
        body="""\
  assign z = (present_state == S101);
  always @(posedge clk) begin
    if (reset) present_state <= IDLE;
    else present_state <= next_state;
  end
  always @(present_state or x) begin
    case (present_state)
      IDLE: next_state = x ? S1 : IDLE;
      S1: next_state = x ? S1 : S10;
      S10: next_state = x ? S101 : IDLE;
      S101: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
endmodule
""",
        description="classic overlap handling (stay in S1 on x=1) deviates from the prompt",
    ),
    WrongVariant(
        name="z_on_s10",
        body="""\
  assign z = (present_state == S10);
  always @(posedge clk) begin
    if (reset) present_state <= IDLE;
    else present_state <= next_state;
  end
  always @(present_state or x) begin
    case (present_state)
      IDLE: next_state = x ? S1 : IDLE;
      S1: next_state = x ? IDLE : S10;
      S10: next_state = x ? S101 : IDLE;
      S101: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
endmodule
""",
        description="asserts the output one state too early",
    ),
    WrongVariant(
        name="never_leaves_s101",
        body="""\
  assign z = (present_state == S101);
  always @(posedge clk) begin
    if (reset) present_state <= IDLE;
    else present_state <= next_state;
  end
  always @(present_state or x) begin
    case (present_state)
      IDLE: next_state = x ? S1 : IDLE;
      S1: next_state = x ? IDLE : S10;
      S10: next_state = x ? S101 : IDLE;
      S101: next_state = S101;
      default: next_state = IDLE;
    endcase
  end
endmodule
""",
        description="latches in the accepting state forever",
    ),
)

PROBLEM = Problem(
    number=15,
    slug="adv_fsm",
    title="FSM to recognize '101'",
    difficulty=Difficulty.ADVANCED,
    module_name="adv_fsm",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
