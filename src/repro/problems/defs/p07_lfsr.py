"""Problem 7 (Intermediate): LFSR with taps at 3 and 5.

The paper notes (Sec. VI) that for this problem LLMs "had trouble
concatenating the most significant bits with the feedback value" — our
wrong variants reproduce exactly that failure mode.
"""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a 5-bit linear feedback shift register (LFSR) with taps at positions 3 and 5.
module lfsr(input clk, input reset, output reg [4:0] q);
"""

_MEDIUM = _LOW + """\
// On reset, q is set to 5'h1.
// On each clock, the register shifts left by one and the new least
// significant bit is the exclusive-or of the tap bits q[4] and q[2].
"""

_HIGH = _MEDIUM + """\
// On every positive edge of clk:
//   if reset is high, q <= 5'h1
//   else q <= {q[3:0], q[4] ^ q[2]}
"""

CANONICAL = """\
  always @(posedge clk) begin
    if (reset) q <= 5'h1;
    else q <= {q[3:0], q[4] ^ q[2]};
  end
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, reset;
  wire [4:0] q;
  reg [4:0] expected;
  integer errors;
  integer i;
  lfsr dut(.clk(clk), .reset(reset), .q(q));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; reset = 1;
    @(posedge clk); #1;
    if (q !== 5'h1) begin $display("FAIL reset q=%b", q); errors = errors + 1; end
    reset = 0;
    expected = 5'h1;
    for (i = 0; i < 40; i = i + 1) begin
      @(posedge clk); #1;
      expected = {expected[3:0], expected[4] ^ expected[2]};
      if (q !== expected) begin
        $display("FAIL step=%0d q=%b expected=%b", i, q, expected);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="bad_concat",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 5'h1;
    else q <= {q[4:1], q[4] ^ q[2]};
  end
endmodule
""",
        description="keeps the MSB instead of shifting it out (paper Sec. VI)",
    ),
    WrongVariant(
        name="wrong_taps",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 5'h1;
    else q <= {q[3:0], q[4] ^ q[3]};
  end
endmodule
""",
        description="taps at 4 and 5 instead of 3 and 5",
    ),
    WrongVariant(
        name="shift_right",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 5'h1;
    else q <= {q[4] ^ q[2], q[4:1]};
  end
endmodule
""",
        description="shifts right instead of left",
    ),
)

PROBLEM = Problem(
    number=7,
    slug="lfsr",
    title="LFSR with taps at 3 and 5",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="lfsr",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
