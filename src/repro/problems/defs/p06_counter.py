"""Problem 6 (Intermediate): a counter that counts from 1 to 12 (Fig. 3)."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a counter that counts from 1 to 12.
module counter(input clk, input reset, output reg [3:0] q);
"""

_MEDIUM = _LOW + """\
// On the positive edge of clk, if reset is high, q is set to 1.
// Otherwise q counts up from 1 to 12 and wraps back to 1.
"""

_HIGH = _MEDIUM + """\
// On every positive edge of clk:
//   if reset is high, q <= 1
//   else if q is 12, q <= 1
//   else q <= q + 1
"""

CANONICAL = """\
  always @(posedge clk) begin
    if (reset) q <= 4'd1;
    else begin
      if (q == 4'd12) q <= 4'd1;
      else q <= q + 4'd1;
    end
  end
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, reset;
  wire [3:0] q;
  reg [3:0] expected;
  integer errors;
  integer i;
  counter dut(.clk(clk), .reset(reset), .q(q));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; reset = 1;
    @(posedge clk); #1;
    if (q !== 4'd1) begin $display("FAIL reset q=%d", q); errors = errors + 1; end
    reset = 0;
    expected = 4'd1;
    for (i = 0; i < 26; i = i + 1) begin
      @(posedge clk); #1;
      if (expected == 4'd12) expected = 4'd1;
      else expected = expected + 4'd1;
      if (q !== expected) begin
        $display("FAIL step=%0d q=%d expected=%d", i, q, expected);
        errors = errors + 1;
      end
    end
    reset = 1;
    @(posedge clk); #1;
    if (q !== 4'd1) begin $display("FAIL re-reset q=%d", q); errors = errors + 1; end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    # The paper's Fig. 3c: the counter never wraps back to 1 at 12.
    WrongVariant(
        name="no_wrap",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 4'd1;
    else begin
      q <= q + 4'd1;
    end
  end
endmodule
""",
        description="paper Fig. 3c: counter does not stop at 12",
    ),
    WrongVariant(
        name="counts_from_zero",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 4'd0;
    else begin
      if (q == 4'd12) q <= 4'd0;
      else q <= q + 4'd1;
    end
  end
endmodule
""",
        description="counts 0..12 instead of 1..12",
    ),
    WrongVariant(
        name="wraps_at_eleven",
        body="""\
  always @(posedge clk) begin
    if (reset) q <= 4'd1;
    else begin
      if (q == 4'd11) q <= 4'd1;
      else q <= q + 4'd1;
    end
  end
endmodule
""",
        description="off-by-one wrap point",
    ),
)

PROBLEM = Problem(
    number=6,
    slug="counter_1_to_12",
    title="A 1-to-12 counter",
    difficulty=Difficulty.INTERMEDIATE,
    module_name="counter",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
