"""Problem 16 (Advanced): 64-bit arithmetic shift register."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a 64-bit arithmetic shift register with synchronous load.
module shift64(input clk, input load, input ena, input [1:0] amount, input [63:0] data, output reg [63:0] q);
"""

_MEDIUM = _LOW + """\
// On the positive edge of clk, when load is high, q is loaded with data.
// Otherwise, when ena is high, q shifts by the selected amount:
//   amount=00 shifts left by 1, amount=01 shifts left by 8,
//   amount=10 arithmetic-shifts right by 1, amount=11 arithmetic-shifts right by 8.
// The arithmetic right shift replicates q[63], the sign bit.
"""

_HIGH = _MEDIUM + """\
// On every positive edge of clk:
//   if load: q <= data
//   else if ena:
//     case (amount)
//       2'b00: q <= q << 1
//       2'b01: q <= q << 8
//       2'b10: q <= {q[63], q[63:1]}
//       2'b11: q <= {{8{q[63]}}, q[63:8]}
//     endcase
"""

CANONICAL = """\
  always @(posedge clk) begin
    if (load) q <= data;
    else if (ena) begin
      case (amount)
        2'b00: q <= q << 1;
        2'b01: q <= q << 8;
        2'b10: q <= {q[63], q[63:1]};
        2'b11: q <= {{8{q[63]}}, q[63:8]};
      endcase
    end
  end
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, load, ena;
  reg [1:0] amount;
  reg [63:0] data;
  wire [63:0] q;
  reg [63:0] expected;
  integer errors;
  integer i;
  shift64 dut(.clk(clk), .load(load), .ena(ena), .amount(amount), .data(data), .q(q));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; load = 0; ena = 0; amount = 0; data = 0;
    // load a negative pattern (MSB set)
    load = 1; data = 64'h8000_0000_1234_5678;
    @(posedge clk); #1;
    load = 0;
    if (q !== 64'h8000000012345678) begin
      $display("FAIL load q=%h", q); errors = errors + 1;
    end
    expected = 64'h8000000012345678;
    // exercise every amount with enable high; start with the arithmetic
    // right shifts while the sign bit is still set
    for (i = 0; i < 8; i = i + 1) begin
      ena = 1; amount = i[1:0] + 2'd2;
      @(posedge clk); #1;
      case (amount)
        2'b00: expected = expected << 1;
        2'b01: expected = expected << 8;
        2'b10: expected = {expected[63], expected[63:1]};
        2'b11: expected = {{8{expected[63]}}, expected[63:8]};
      endcase
      if (q !== expected) begin
        $display("FAIL amount=%b q=%h expected=%h", amount, q, expected);
        errors = errors + 1;
      end
    end
    // hold when enable is low
    ena = 0; amount = 2'b00;
    @(posedge clk); #1;
    if (q !== expected) begin
      $display("FAIL hold q=%h expected=%h", q, expected); errors = errors + 1;
    end
    // load must win even while enable is high
    load = 1; ena = 1; amount = 2'b00; data = 64'h7FFF_FFFF_FFFF_FFFF;
    @(posedge clk); #1;
    if (q !== 64'h7FFFFFFFFFFFFFFF) begin
      $display("FAIL load priority q=%h", q); errors = errors + 1;
    end
    load = 0; ena = 1; amount = 2'b11;
    @(posedge clk); #1;
    if (q !== 64'h007FFFFFFFFFFFFF) begin
      $display("FAIL ashr positive q=%h", q); errors = errors + 1;
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="logical_right_shift",
        body="""\
  always @(posedge clk) begin
    if (load) q <= data;
    else if (ena) begin
      case (amount)
        2'b00: q <= q << 1;
        2'b01: q <= q << 8;
        2'b10: q <= q >> 1;
        2'b11: q <= q >> 8;
      endcase
    end
  end
endmodule
""",
        description="right shifts are logical, losing the sign bit",
    ),
    WrongVariant(
        name="swapped_amounts",
        body="""\
  always @(posedge clk) begin
    if (load) q <= data;
    else if (ena) begin
      case (amount)
        2'b00: q <= q << 8;
        2'b01: q <= q << 1;
        2'b10: q <= {{8{q[63]}}, q[63:8]};
        2'b11: q <= {q[63], q[63:1]};
      endcase
    end
  end
endmodule
""",
        description="1-bit and 8-bit shift amounts swapped",
    ),
    WrongVariant(
        name="load_priority_inverted",
        body="""\
  always @(posedge clk) begin
    if (ena) begin
      case (amount)
        2'b00: q <= q << 1;
        2'b01: q <= q << 8;
        2'b10: q <= {q[63], q[63:1]};
        2'b11: q <= {{8{q[63]}}, q[63:8]};
      endcase
    end
    else if (load) q <= data;
  end
endmodule
""",
        description="shift takes priority over load",
    ),
)

PROBLEM = Problem(
    number=16,
    slug="shift64",
    title="64-bit arithmetic shift register",
    difficulty=Difficulty.ADVANCED,
    module_name="shift64",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
