"""Problem 4 (Basic): a 2-input multiplexer."""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is a 2-input multiplexer.
module mux2(input a, input b, input sel, output out);
"""

_MEDIUM = _LOW + """\
// When sel is 0 the output out is a; when sel is 1 the output out is b.
"""

_HIGH = _MEDIUM + """\
// Use a continuous assignment with the conditional operator:
// out = sel ? b : a
"""

CANONICAL = """\
  assign out = sel ? b : a;
endmodule
"""

TESTBENCH = """\
module tb;
  reg a, b, sel;
  wire out;
  reg expected;
  integer errors;
  integer i;
  mux2 dut(.a(a), .b(b), .sel(sel), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 8; i = i + 1) begin
      a = i[0]; b = i[1]; sel = i[2]; #1;
      expected = sel ? b : a;
      if (out !== expected) begin
        $display("FAIL a=%b b=%b sel=%b out=%b expected=%b", a, b, sel, out, expected);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    WrongVariant(
        name="swapped_select",
        body="""\
  assign out = sel ? a : b;
endmodule
""",
        description="selects a on sel=1 instead of b",
    ),
    WrongVariant(
        name="and_or_typo",
        body="""\
  assign out = (sel & a) | (~sel & b);
endmodule
""",
        description="gate-level mux with the select polarity swapped",
    ),
)

PROBLEM = Problem(
    number=4,
    slug="mux2",
    title="A 2-input multiplexer",
    difficulty=Difficulty.BASIC,
    module_name="mux2",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
