"""Problem 17 (Advanced): ABRO FSM (paper Fig. 4).

From Potop-Butucaru, Edwards and Berry's "Compiling Esterel": the output
fires once both a and b have been seen (in any order or simultaneously),
then the machine returns to idle.  Our prompt pins the Moore reading the
paper's Fig. 4a comments state ("Output z depends only on the state SAB").
The wrong variant reproduces the paper's Fig. 4c failure.
"""

from ..spec import Difficulty, Problem, PromptLevel, WrongVariant

_LOW = """\
// This is an FSM.
// It outputs 1 when 1 is received for signals a and b irrespective of their
// order, either simultaneously or non-simultaneously.
module abro(input clk, input reset, input a, input b, output z);
  parameter IDLE = 0, SA = 1, SB = 2, SAB = 3;
  reg [1:0] cur_state, next_state;
"""

_MEDIUM = _LOW + """\
// Update state or reset on every clock edge
// Output z depends only on the state SAB
// The output z is high when cur_state is SAB
// cur_state is reset to IDLE when reset is high. Otherwise, it takes the value of next_state.
"""

_HIGH = _MEDIUM + """\
// Next state generation logic:
// If cur_state is IDLE and a and b are both high, state changes to SAB
// If cur_state is IDLE, and a is high, state changes to SA
// If cur_state is IDLE, and b is high, state changes to SB
// If cur_state is SA, and b is high, state changes to SAB
// If cur_state is SB, and a is high, state changes to SAB
// If cur_state is SAB, state changes to IDLE
"""

CANONICAL = """\
  always @(posedge clk) begin
    if (reset) cur_state <= IDLE;
    else cur_state <= next_state;
  end
  always @(cur_state or a or b) begin
    case (cur_state)
      IDLE: begin
        if (a && b) next_state = SAB;
        else if (a) next_state = SA;
        else if (b) next_state = SB;
        else next_state = IDLE;
      end
      SA: begin
        if (b) next_state = SAB;
        else next_state = SA;
      end
      SB: begin
        if (a) next_state = SAB;
        else next_state = SB;
      end
      SAB: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
  assign z = (cur_state == SAB);
endmodule
"""

TESTBENCH = """\
module tb;
  reg clk, reset, a, b;
  wire z;
  reg [1:0] model;
  reg expected_z;
  reg [31:0] a_pattern, b_pattern;
  integer errors;
  integer i;
  abro dut(.clk(clk), .reset(reset), .a(a), .b(b), .z(z));
  always #5 clk = ~clk;
  initial begin
    errors = 0;
    clk = 0; reset = 1; a = 0; b = 0;
    @(posedge clk); #1;
    if (z !== 1'b0) begin $display("FAIL reset z=%b", z); errors = errors + 1; end
    reset = 0;
    model = 2'd0;
    // covers: a then b; b then a; simultaneous; repeated symbols; idle gaps
    a_pattern = 32'b0000_1010_0110_0001_0100_0011_0001_1001;
    b_pattern = 32'b0000_0110_1010_0010_0110_0011_0110_0110;
    for (i = 0; i < 32; i = i + 1) begin
      a = a_pattern[i]; b = b_pattern[i];
      @(posedge clk); #1;
      case (model)
        2'd0: begin
          if (a && b) model = 2'd3;
          else if (a) model = 2'd1;
          else if (b) model = 2'd2;
        end
        2'd1: if (b) model = 2'd3;
        2'd2: if (a) model = 2'd3;
        2'd3: model = 2'd0;
      endcase
      expected_z = (model == 2'd3);
      if (z !== expected_z) begin
        $display("FAIL step=%0d a=%b b=%b z=%b expected=%b", i, a, b, z, expected_z);
        errors = errors + 1;
      end
    end
    if (errors == 0) $display("ALL TESTS PASSED");
    $finish;
  end
endmodule
"""

WRONG_VARIANTS = (
    # The paper's Fig. 4c: output is not assigned to state SAB.
    WrongVariant(
        name="fig4c_output",
        body="""\
  always @(posedge clk) begin
    if (reset) cur_state <= IDLE;
    else cur_state <= next_state;
  end
  always @(cur_state or a or b) begin
    case (cur_state)
      IDLE: begin
        if (a && b) next_state = SAB;
        else if (a) next_state = SA;
        else if (b) next_state = SB;
        else next_state = IDLE;
      end
      SA: begin
        if (b) next_state = SAB;
        else next_state = SA;
      end
      SB: begin
        if (a) next_state = SAB;
        else next_state = SB;
      end
      SAB: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
  assign z = (cur_state == IDLE && a && b) || (cur_state == IDLE && a);
endmodule
""",
        description="paper Fig. 4c: output is not assigned to state SAB",
    ),
    WrongVariant(
        name="no_simultaneous",
        body="""\
  always @(posedge clk) begin
    if (reset) cur_state <= IDLE;
    else cur_state <= next_state;
  end
  always @(cur_state or a or b) begin
    case (cur_state)
      IDLE: begin
        if (a) next_state = SA;
        else if (b) next_state = SB;
        else next_state = IDLE;
      end
      SA: begin
        if (b) next_state = SAB;
        else next_state = SA;
      end
      SB: begin
        if (a) next_state = SAB;
        else next_state = SB;
      end
      SAB: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
  assign z = (cur_state == SAB);
endmodule
""",
        description="misses the simultaneous a-and-b arrival from IDLE",
    ),
    WrongVariant(
        name="sab_sticky",
        body="""\
  always @(posedge clk) begin
    if (reset) cur_state <= IDLE;
    else cur_state <= next_state;
  end
  always @(cur_state or a or b) begin
    case (cur_state)
      IDLE: begin
        if (a && b) next_state = SAB;
        else if (a) next_state = SA;
        else if (b) next_state = SB;
        else next_state = IDLE;
      end
      SA: begin
        if (b) next_state = SAB;
        else next_state = SA;
      end
      SB: begin
        if (a) next_state = SAB;
        else next_state = SB;
      end
      SAB: next_state = SAB;
      default: next_state = IDLE;
    endcase
  end
  assign z = (cur_state == SAB);
endmodule
""",
        description="never returns to IDLE after firing",
    ),
)

PROBLEM = Problem(
    number=17,
    slug="abro",
    title="ABRO FSM",
    difficulty=Difficulty.ADVANCED,
    module_name="abro",
    prompts={
        PromptLevel.LOW: _LOW,
        PromptLevel.MEDIUM: _MEDIUM,
        PromptLevel.HIGH: _HIGH,
    },
    canonical_body=CANONICAL,
    testbench=TESTBENCH,
    wrong_variants=WRONG_VARIANTS,
)
