"""Dataclasses describing the 17-problem evaluation set (paper Table II).

A :class:`Problem` bundles everything the evaluation pipeline needs:

* three prompts of increasing detail (L/M/H, paper Sec. IV-B) — each is
  the text handed to the LLM, ending mid-module so the model completes it;
* the canonical (correct) completion body;
* *wrong variants*: completions that compile but fail the test bench,
  modelled on the paper's published failure examples (Fig. 2c/3c/4c);
* a self-checking test bench whose output contains ``ALL TESTS PASSED``
  exactly when the design under test is functionally correct.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Difficulty(enum.Enum):
    """Problem difficulty level from Table II."""

    BASIC = "basic"
    INTERMEDIATE = "intermediate"
    ADVANCED = "advanced"

    def __str__(self) -> str:
        return self.value


class PromptLevel(enum.Enum):
    """Prompt description detail from Sec. IV-B."""

    LOW = "L"
    MEDIUM = "M"
    HIGH = "H"

    def __str__(self) -> str:
        return self.value


PASS_MARKER = "ALL TESTS PASSED"


@dataclass(frozen=True)
class WrongVariant:
    """A completion that compiles but fails functional tests."""

    name: str
    body: str
    description: str = ""


@dataclass(frozen=True)
class Problem:
    """One problem of the evaluation set."""

    number: int
    slug: str
    title: str
    difficulty: Difficulty
    module_name: str
    prompts: dict[PromptLevel, str]
    canonical_body: str
    testbench: str
    wrong_variants: tuple[WrongVariant, ...] = field(default_factory=tuple)

    def prompt(self, level: PromptLevel) -> str:
        return self.prompts[level]

    def full_source(self, completion: str, level: PromptLevel = PromptLevel.LOW) -> str:
        """Assemble a complete module: prompt text + completion body."""
        prompt = self.prompts[level].rstrip("\n")
        return f"{prompt}\n{completion.strip()}\n"

    def canonical_source(self, level: PromptLevel = PromptLevel.LOW) -> str:
        return self.full_source(self.canonical_body, level)

    def bench_source(self, completion: str, level: PromptLevel = PromptLevel.LOW) -> str:
        """Module-under-test plus its test bench, ready to simulate."""
        return self.full_source(completion, level) + "\n" + self.testbench

    def __str__(self) -> str:
        return f"Problem {self.number}: {self.title} ({self.difficulty})"
