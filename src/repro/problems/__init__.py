"""The 17-problem Verilog benchmark set of the paper (Table II).

Exports :data:`ALL_PROBLEMS` plus lookup helpers, and the dataclasses
describing problems, difficulties and prompt levels.
"""

from .set17 import (
    ALL_PROBLEMS,
    DIFFICULTY_COUNTS,
    get_problem,
    problems_by_difficulty,
)
from .spec import PASS_MARKER, Difficulty, Problem, PromptLevel, WrongVariant

__all__ = [
    "ALL_PROBLEMS",
    "DIFFICULTY_COUNTS",
    "Difficulty",
    "PASS_MARKER",
    "Problem",
    "PromptLevel",
    "WrongVariant",
    "get_problem",
    "problems_by_difficulty",
]
