"""The complete 17-problem evaluation set (paper Table II)."""

from __future__ import annotations

from .defs import (
    p01_wire,
    p02_and_gate,
    p03_priority_encoder,
    p04_mux,
    p05_half_adder,
    p06_counter,
    p07_lfsr,
    p08_fsm_two_states,
    p09_shift_rotate,
    p10_ram,
    p11_permutation,
    p12_truth_table,
    p13_signed_adder,
    p14_counter_enable,
    p15_adv_fsm,
    p16_shift64,
    p17_abro,
)
from .spec import Difficulty, Problem

ALL_PROBLEMS: tuple[Problem, ...] = tuple(
    module.PROBLEM
    for module in (
        p01_wire,
        p02_and_gate,
        p03_priority_encoder,
        p04_mux,
        p05_half_adder,
        p06_counter,
        p07_lfsr,
        p08_fsm_two_states,
        p09_shift_rotate,
        p10_ram,
        p11_permutation,
        p12_truth_table,
        p13_signed_adder,
        p14_counter_enable,
        p15_adv_fsm,
        p16_shift64,
        p17_abro,
    )
)

_BY_NUMBER = {problem.number: problem for problem in ALL_PROBLEMS}
_BY_SLUG = {problem.slug: problem for problem in ALL_PROBLEMS}


def get_problem(key: int | str) -> Problem:
    """Look up a problem by number (1-17) or slug."""
    if isinstance(key, int):
        if key not in _BY_NUMBER:
            raise KeyError(f"no problem number {key}")
        return _BY_NUMBER[key]
    if key not in _BY_SLUG:
        raise KeyError(f"no problem slug {key!r}")
    return _BY_SLUG[key]


def problems_by_difficulty(difficulty: Difficulty) -> tuple[Problem, ...]:
    """All problems at one difficulty, in number order."""
    return tuple(p for p in ALL_PROBLEMS if p.difficulty is difficulty)


DIFFICULTY_COUNTS = {
    Difficulty.BASIC: 4,
    Difficulty.INTERMEDIATE: 8,
    Difficulty.ADVANCED: 5,
}
