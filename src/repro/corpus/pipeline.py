"""End-to-end training-corpus construction (paper Fig. 1, steps 1-2).

Builds the two corpora the paper compares in its ablation study:

* ``github`` — BigQuery-style gather, MinHash dedup, module/size filters;
* ``github+books`` — the above plus cleaned, windowed textbook text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .documents import Corpus, SourceFile
from .filters import MAX_FILE_CHARS, apply_filters
from .github import SyntheticGitHub, bigquery_verilog_query
from .minhash import deduplicate
from .textbook import generate_library, textbook_examples


@dataclass
class CorpusConfig:
    """Knobs of the gathering pipeline."""

    repos: int = 120
    seed: int = 2023
    dedup_threshold: float = 0.8
    minhash_permutations: int = 64
    shingle_k: int = 8
    size_limit: int = MAX_FILE_CHARS
    textbook_count: int = 12
    window: int = 1_024
    stride: int = 512
    include_textbooks: bool = False


@dataclass
class TrainingCorpus:
    """The assembled corpus plus a log of each pipeline stage."""

    corpus: Corpus
    stage_log: list[tuple[str, int]] = field(default_factory=list)

    @property
    def text(self) -> str:
        return self.corpus.training_text()

    def summary(self) -> dict:
        return {"stages": list(self.stage_log), **self.corpus.stats()}


def build_github_corpus(config: CorpusConfig | None = None) -> TrainingCorpus:
    """GitHub leg: query -> dedup -> filters."""
    config = config or CorpusConfig()
    hub = SyntheticGitHub(repos=config.repos, seed=config.seed)
    gathered = bigquery_verilog_query(hub.snapshot())
    log = [("queried", len(gathered))]

    keep = deduplicate(
        [f.text for f in gathered],
        threshold=config.dedup_threshold,
        num_perm=config.minhash_permutations,
        shingle_k=config.shingle_k,
        seed=config.seed,
    )
    deduped = [gathered[i] for i in keep]
    log.append(("after_dedup", len(deduped)))

    corpus = apply_filters(deduped, size_limit=config.size_limit)
    corpus.drop("near_duplicate", len(gathered) - len(deduped))
    log.append(("after_filters", len(corpus)))
    return TrainingCorpus(corpus=corpus, stage_log=log)


def build_combined_corpus(config: CorpusConfig | None = None) -> TrainingCorpus:
    """GitHub + textbook leg (the paper's ablation option (b))."""
    config = config or CorpusConfig()
    training = build_github_corpus(config)
    books = generate_library(count=config.textbook_count, seed=config.seed)
    examples = textbook_examples(books, config.window, config.stride)
    for index, example in enumerate(examples):
        training.corpus.add(
            SourceFile(
                path=f"books/example_{index:05d}.txt",
                text=example,
                origin="textbook",
            )
        )
    training.stage_log.append(("textbook_examples", len(examples)))
    return training


def build_corpus(config: CorpusConfig | None = None) -> TrainingCorpus:
    """Dispatch on ``config.include_textbooks``."""
    config = config or CorpusConfig()
    if config.include_textbooks:
        return build_combined_corpus(config)
    return build_github_corpus(config)
