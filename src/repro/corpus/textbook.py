"""The Verilog-textbook corpus leg (paper Sec. III-A-b).

The paper extracts text from 70 PDF textbooks with pymuPDF/OCR, filters
irrelevant passages (index, preface, acknowledgments), uses regular
expressions to check "high-level syntax of Verilog snippets from the
surrounding prose", and produces training examples with an overlapping
sliding window.  Offline we synthesize book text with the same structure
— prose chapters, embedded code listings with OCR-style corruption, and
front/back-matter noise — and implement the cleaning pipeline for real.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from .generators import random_module

_PROSE_SENTENCES = (
    "A hardware description language models digital circuits at the register transfer level.",
    "Every module declares its ports and the nets or variables it drives.",
    "Blocking assignments execute in order inside an always block.",
    "Nonblocking assignments schedule their updates at the end of the time step.",
    "A sensitivity list names the signals that re-trigger a combinational block.",
    "Synchronous resets are sampled on the active clock edge.",
    "Continuous assignments describe purely combinational behaviour.",
    "Synthesis tools map the behavioural description to gates and flip flops.",
    "Simulation proceeds in delta cycles until no more events remain.",
    "The case statement selects one branch by comparing against each label.",
    "Test benches drive stimulus into the design under test and check outputs.",
    "Timing controls such as delays are ignored by synthesis.",
)

_FRONT_MATTER = (
    "PREFACE\nThis book grew out of lecture notes for a first course in digital design. "
    "We thank our students for their patience and feedback.\n",
    "ACKNOWLEDGMENTS\nThe authors thank the anonymous reviewers, our editors, and our families "
    "for their support during the writing of this book.\n",
)

_BACK_MATTER = (
    "INDEX\nadder, 12, 45\nalways block, 23, 57\nblocking assignment, 24\n"
    "case statement, 31\ncounter, 44\nflip-flop, 19, 50\nmodule, 7\n",
)

# OCR corruptions pymuPDF-style extraction suffers (paper: "Depending on
# the quality of the PDF, the text quality varies").
_OCR_SUBSTITUTIONS = (
    ("fi", "f i"),
    ("ffi", "f f i"),
    ("=>", "= >"),
)


@dataclass
class Textbook:
    """One synthetic textbook: ordered page texts."""

    title: str
    pages: list[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        return "\n".join(self.pages)


def _prose_paragraph(rng: random.Random, sentences: int = 4) -> str:
    return " ".join(rng.choice(_PROSE_SENTENCES) for _ in range(sentences))


def _ocr_corrupt(text: str, rng: random.Random, rate: float) -> str:
    if rng.random() >= rate:
        return text
    corrupted = text
    for old, new in _OCR_SUBSTITUTIONS:
        if rng.random() < 0.5:
            corrupted = corrupted.replace(old, new)
    return corrupted


def generate_textbook(
    index: int, seed: int = 7, chapters: int = 5, ocr_noise: float = 0.3
) -> Textbook:
    """Deterministically synthesize one textbook."""
    rng = random.Random(seed * 10_007 + index)
    book = Textbook(title=f"Verilog by Example, Volume {index + 1}")
    book.pages.append(rng.choice(_FRONT_MATTER))
    for chapter in range(chapters):
        page = [f"CHAPTER {chapter + 1}\n", _prose_paragraph(rng), "\n"]
        listings = rng.randrange(1, 4)
        for _ in range(listings):
            code = random_module(rng)
            page.append("Listing:\n")
            page.append(_ocr_corrupt(code, rng, ocr_noise))
            page.append(_prose_paragraph(rng, sentences=2))
            page.append("\n")
        book.pages.append("\n".join(page))
    book.pages.append(rng.choice(_BACK_MATTER))
    return book


def generate_library(count: int = 70, seed: int = 7) -> list[Textbook]:
    """The paper's 70-book e-library."""
    return [generate_textbook(i, seed=seed) for i in range(count)]


# ----------------------------------------------------------------------
# Cleaning pipeline (the real contribution of this leg)
# ----------------------------------------------------------------------
_NOISE_HEADINGS = re.compile(
    r"^(PREFACE|ACKNOWLEDGMENTS?|INDEX|CONTENTS|ABOUT THE AUTHORS?)\b",
    re.IGNORECASE,
)

# High-level Verilog syntax check: a module header and a matching
# endmodule with plausible structure in between.
_SNIPPET_RE = re.compile(
    r"module\s+[A-Za-z_][\w$]*\s*(?:#\s*\(.*?\))?\s*\(.*?\)\s*;.*?endmodule",
    re.DOTALL,
)


def filter_irrelevant_passages(text: str) -> str:
    """Drop front/back-matter sections (index, preface, acknowledgments)."""
    kept: list[str] = []
    skipping = False
    for block in text.split("\n"):
        if _NOISE_HEADINGS.match(block.strip()):
            skipping = True
            continue
        if skipping and re.match(r"^CHAPTER\b", block.strip(), re.IGNORECASE):
            skipping = False
        if not skipping:
            kept.append(block)
    return "\n".join(kept)


def repair_ocr(text: str) -> str:
    """Undo the known OCR splits so snippets re-validate."""
    repaired = text
    for old, new in _OCR_SUBSTITUTIONS:
        repaired = repaired.replace(new, old)
    return repaired


def extract_snippets(text: str) -> list[str]:
    """Verilog snippets validated by the high-level regex check."""
    return [m.group(0) for m in _SNIPPET_RE.finditer(text)]


def sliding_windows(
    text: str, window: int = 1_024, stride: int = 512
) -> list[str]:
    """Overlapping sliding-window training examples over cleaned text."""
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    if len(text) <= window:
        return [text] if text else []
    examples = []
    for start in range(0, len(text) - window + stride, stride):
        chunk = text[start : start + window]
        if chunk:
            examples.append(chunk)
    return examples


def clean_textbook(book: Textbook) -> str:
    """Full cleaning pass over one book: filter, OCR repair."""
    return repair_ocr(filter_irrelevant_passages(book.text))


def textbook_examples(
    books: list[Textbook], window: int = 1_024, stride: int = 512
) -> list[str]:
    """Cleaned, windowed training examples from the whole library."""
    examples: list[str] = []
    for book in books:
        cleaned = clean_textbook(book)
        examples.extend(sliding_windows(cleaned, window, stride))
    return examples
