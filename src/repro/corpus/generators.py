"""Parameterized Verilog module generators for the synthetic corpus.

The paper's training data is ~50K real ``.v`` files from GitHub.  Offline
we synthesize a corpus with the same *shape*: a family library of common
RTL blocks (counters, adders, muxes, FSMs, shifters, register files,
FIFOs, decoders, ALUs), instantiated with varying parameters, identifier
styles and comment density, so that de-duplication, filtering and
tokenizer/LM training all see realistic variety.  Every generated module
parses with :mod:`repro.verilog` (asserted in tests).
"""

from __future__ import annotations

import random

_IDENT_STYLES = ("snake", "camel", "short")


def _style_name(base: str, style: str, rng: random.Random) -> str:
    parts = base.split("_")
    if style == "camel":
        return parts[0] + "".join(p.capitalize() for p in parts[1:])
    if style == "short":
        return "".join(p[0] for p in parts) + str(rng.randrange(10))
    return base


def _header_comment(title: str, rng: random.Random) -> str:
    choices = [
        f"// {title}\n",
        f"// Module: {title}\n// Auto-generated RTL block\n",
        f"/* {title} */\n",
        "",
    ]
    return rng.choice(choices)


def gen_counter(rng: random.Random) -> str:
    width = rng.choice([4, 8, 12, 16, 32])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"counter_{width}", style, rng)
    q = _style_name("count_value", style, rng)
    limit = rng.randrange(3, (1 << min(width, 8)) - 1)
    return (
        _header_comment(f"{width}-bit counter", rng)
        + f"module {name}(input clk, input rst, output reg [{width - 1}:0] {q});\n"
        + "  always @(posedge clk) begin\n"
        + f"    if (rst) {q} <= {width}'d0;\n"
        + f"    else if ({q} == {width}'d{limit}) {q} <= {width}'d0;\n"
        + f"    else {q} <= {q} + {width}'d1;\n"
        + "  end\n"
        + "endmodule\n"
    )


def gen_adder(rng: random.Random) -> str:
    width = rng.choice([4, 8, 16, 24, 32])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"adder_{width}", style, rng)
    carry = rng.random() < 0.5
    if carry:
        return (
            _header_comment(f"{width}-bit adder with carry", rng)
            + f"module {name}(input [{width - 1}:0] a, input [{width - 1}:0] b,\n"
            + f"             output [{width - 1}:0] sum, output cout);\n"
            + f"  assign {{cout, sum}} = a + b;\n"
            + "endmodule\n"
        )
    return (
        _header_comment(f"{width}-bit adder", rng)
        + f"module {name}(input [{width - 1}:0] a, input [{width - 1}:0] b, output [{width - 1}:0] sum);\n"
        + "  assign sum = a + b;\n"
        + "endmodule\n"
    )


def gen_mux(rng: random.Random) -> str:
    width = rng.choice([1, 2, 4, 8, 16])
    ways = rng.choice([2, 4])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"mux{ways}_{width}", style, rng)
    if ways == 2:
        return (
            _header_comment(f"2-way {width}-bit mux", rng)
            + f"module {name}(input [{width - 1}:0] a, input [{width - 1}:0] b, input sel, output [{width - 1}:0] y);\n"
            + "  assign y = sel ? b : a;\n"
            + "endmodule\n"
        )
    return (
        _header_comment(f"4-way {width}-bit mux", rng)
        + f"module {name}(input [{width - 1}:0] d0, input [{width - 1}:0] d1,\n"
        + f"             input [{width - 1}:0] d2, input [{width - 1}:0] d3,\n"
        + f"             input [1:0] sel, output reg [{width - 1}:0] y);\n"
        + "  always @(*) begin\n"
        + "    case (sel)\n"
        + "      2'b00: y = d0;\n"
        + "      2'b01: y = d1;\n"
        + "      2'b10: y = d2;\n"
        + "      default: y = d3;\n"
        + "    endcase\n"
        + "  end\n"
        + "endmodule\n"
    )


def gen_fsm(rng: random.Random) -> str:
    states = rng.choice([2, 3, 4])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"fsm_{states}state", style, rng)
    width = max(1, (states - 1).bit_length())
    lines = [
        _header_comment(f"{states}-state FSM", rng),
        f"module {name}(input clk, input rst, input go, output reg done);\n",
        f"  reg [{width - 1}:0] state;\n",
    ]
    for index in range(states):
        lines.append(f"  parameter S{index} = {index};\n")
    lines.append("  always @(posedge clk) begin\n")
    lines.append("    if (rst) state <= S0;\n")
    lines.append("    else begin\n      case (state)\n")
    for index in range(states):
        nxt = (index + 1) % states
        lines.append(f"        S{index}: if (go) state <= S{nxt};\n")
    lines.append("        default: state <= S0;\n")
    lines.append("      endcase\n    end\n  end\n")
    lines.append(f"  always @(state) done = (state == S{states - 1});\n")
    lines.append("endmodule\n")
    return "".join(lines)


def gen_shifter(rng: random.Random) -> str:
    width = rng.choice([8, 16, 32])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"shifter_{width}", style, rng)
    direction = rng.choice(["<<", ">>"])
    return (
        _header_comment(f"{width}-bit shifter", rng)
        + f"module {name}(input [{width - 1}:0] din, input [3:0] amt, output [{width - 1}:0] dout);\n"
        + f"  assign dout = din {direction} amt;\n"
        + "endmodule\n"
    )


def gen_register_file(rng: random.Random) -> str:
    width = rng.choice([8, 16, 32])
    depth_bits = rng.choice([3, 4, 5])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"regfile_{width}x{1 << depth_bits}", style, rng)
    return (
        _header_comment(f"{1 << depth_bits}-entry register file", rng)
        + f"module {name}(input clk, input we, input [{depth_bits - 1}:0] waddr,\n"
        + f"             input [{width - 1}:0] wdata, input [{depth_bits - 1}:0] raddr,\n"
        + f"             output [{width - 1}:0] rdata);\n"
        + f"  reg [{width - 1}:0] regs [0:{(1 << depth_bits) - 1}];\n"
        + "  always @(posedge clk) begin\n"
        + "    if (we) regs[waddr] <= wdata;\n"
        + "  end\n"
        + "  assign rdata = regs[raddr];\n"
        + "endmodule\n"
    )


def gen_decoder(rng: random.Random) -> str:
    bits = rng.choice([2, 3])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"decoder_{bits}to{1 << bits}", style, rng)
    return (
        _header_comment(f"{bits}-to-{1 << bits} decoder", rng)
        + f"module {name}(input [{bits - 1}:0] sel, output [{(1 << bits) - 1}:0] y);\n"
        + f"  assign y = {1 << bits}'d1 << sel;\n"
        + "endmodule\n"
    )


def gen_alu(rng: random.Random) -> str:
    width = rng.choice([8, 16, 32])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"alu_{width}", style, rng)
    return (
        _header_comment(f"{width}-bit ALU", rng)
        + f"module {name}(input [{width - 1}:0] a, input [{width - 1}:0] b,\n"
        + f"             input [1:0] op, output reg [{width - 1}:0] y);\n"
        + "  always @(*) begin\n"
        + "    case (op)\n"
        + "      2'b00: y = a + b;\n"
        + "      2'b01: y = a - b;\n"
        + "      2'b10: y = a & b;\n"
        + "      default: y = a | b;\n"
        + "    endcase\n"
        + "  end\n"
        + "endmodule\n"
    )


def gen_edge_detector(rng: random.Random) -> str:
    style = rng.choice(_IDENT_STYLES)
    name = _style_name("edge_detect", style, rng)
    kind = rng.choice(["rising", "falling"])
    expr = "~prev & din" if kind == "rising" else "prev & ~din"
    return (
        _header_comment(f"{kind}-edge detector", rng)
        + f"module {name}(input clk, input din, output pulse);\n"
        + "  reg prev;\n"
        + "  always @(posedge clk) prev <= din;\n"
        + f"  assign pulse = {expr};\n"
        + "endmodule\n"
    )


def gen_gray_counter(rng: random.Random) -> str:
    width = rng.choice([3, 4, 5, 8])
    style = rng.choice(_IDENT_STYLES)
    name = _style_name(f"gray_counter_{width}", style, rng)
    return (
        _header_comment(f"{width}-bit Gray-code counter", rng)
        + f"module {name}(input clk, input rst, output [{width - 1}:0] gray);\n"
        + f"  reg [{width - 1}:0] bin;\n"
        + "  always @(posedge clk) begin\n"
        + f"    if (rst) bin <= {width}'d0;\n"
        + f"    else bin <= bin + {width}'d1;\n"
        + "  end\n"
        + "  assign gray = bin ^ (bin >> 1);\n"
        + "endmodule\n"
    )


GENERATORS = (
    gen_counter,
    gen_adder,
    gen_mux,
    gen_fsm,
    gen_shifter,
    gen_register_file,
    gen_decoder,
    gen_alu,
    gen_edge_detector,
    gen_gray_counter,
)


def random_module(rng: random.Random) -> str:
    """One random Verilog module from the family library."""
    return rng.choice(GENERATORS)(rng)


def random_verilog_file(rng: random.Random, max_modules: int = 3) -> str:
    """A random ``.v`` file containing one or more modules."""
    count = 1 if rng.random() < 0.7 else rng.randrange(2, max_modules + 1)
    return "\n".join(random_module(rng) for _ in range(count))
