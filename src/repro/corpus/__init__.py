"""Training-corpus pipeline: gathering, de-duplication, filtering.

Reproduces paper Sec. III-A: a GitHub leg (BigQuery-style query, MinHash/
Jaccard de-duplication, module-pair and size filters) and a textbook leg
(cleaning, snippet validation, sliding-window examples).
"""

from .documents import Corpus, SourceFile
from .filters import MAX_FILE_CHARS, apply_filters, has_module_pair, strip_comments
from .github import Repository, SyntheticGitHub, bigquery_verilog_query
from .minhash import MinHasher, deduplicate, estimate_jaccard, exact_jaccard, shingles
from .pipeline import (
    CorpusConfig,
    TrainingCorpus,
    build_combined_corpus,
    build_corpus,
    build_github_corpus,
)
from .textbook import (
    Textbook,
    clean_textbook,
    extract_snippets,
    generate_library,
    generate_textbook,
    sliding_windows,
    textbook_examples,
)

__all__ = [
    "Corpus",
    "CorpusConfig",
    "MAX_FILE_CHARS",
    "MinHasher",
    "Repository",
    "SourceFile",
    "SyntheticGitHub",
    "Textbook",
    "TrainingCorpus",
    "apply_filters",
    "bigquery_verilog_query",
    "build_combined_corpus",
    "build_corpus",
    "build_github_corpus",
    "clean_textbook",
    "deduplicate",
    "estimate_jaccard",
    "exact_jaccard",
    "extract_snippets",
    "generate_library",
    "generate_textbook",
    "has_module_pair",
    "shingles",
    "sliding_windows",
    "strip_comments",
    "textbook_examples",
]
