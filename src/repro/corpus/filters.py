"""File-level filters of the gathering pipeline (paper Sec. III-A).

The paper keeps ``.v`` files "that contain at least one pair of module and
endmodule statements" and drops "large files (number of characters >=
20K)".  These predicates are implemented here, token-aware enough not to
be fooled by comments.
"""

from __future__ import annotations

import re

from .documents import Corpus, SourceFile

MAX_FILE_CHARS = 20_000

_MODULE_RE = re.compile(r"\bmodule\b")
_ENDMODULE_RE = re.compile(r"\bendmodule\b")
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Remove line and block comments (so keyword checks see only code)."""
    return _LINE_COMMENT_RE.sub("", _BLOCK_COMMENT_RE.sub("", text))


def has_module_pair(text: str) -> bool:
    """True when the code contains at least one module/endmodule pair."""
    code = strip_comments(text)
    return bool(_MODULE_RE.search(code)) and bool(_ENDMODULE_RE.search(code))


def is_verilog_path(path: str) -> bool:
    return path.endswith(".v")


def within_size_limit(text: str, limit: int = MAX_FILE_CHARS) -> bool:
    return len(text) < limit


def apply_filters(
    files: list[SourceFile],
    size_limit: int = MAX_FILE_CHARS,
) -> Corpus:
    """Run the paper's filter cascade, recording why files were dropped."""
    corpus = Corpus()
    for source in files:
        if not is_verilog_path(source.path):
            corpus.drop("extension")
            continue
        if not has_module_pair(source.text):
            corpus.drop("no_module_pair")
            continue
        if not within_size_limit(source.text, size_limit):
            corpus.drop("too_large")
            continue
        corpus.add(source)
    return corpus
