"""MinHash signatures and Jaccard-similarity de-duplication.

Implements the paper's de-duplication step (Sec. III-A: "de-duplicated
files (using MinHash and Jaccard similarity metrics)") from scratch:

* character-shingle sets;
* MinHash signatures via ``num_perm`` independent universal hash
  functions ``h_i(x) = (a_i * x + b_i) mod p``;
* LSH banding to find candidate pairs without O(n^2) comparisons;
* greedy duplicate clustering at a Jaccard threshold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def shingles(text: str, k: int = 8) -> set[int]:
    """Set of hashed k-character shingles of ``text``."""
    if len(text) < k:
        return {hash_bytes(text.encode("utf-8"))}
    return {
        hash_bytes(text[i : i + k].encode("utf-8"))
        for i in range(len(text) - k + 1)
    }


def hash_bytes(data: bytes) -> int:
    """Deterministic 32-bit FNV-1a hash (stable across Python runs)."""
    value = 0x811C9DC5
    for byte in data:
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value


@dataclass(frozen=True)
class MinHasher:
    """A family of ``num_perm`` universal hash functions."""

    num_perm: int = 64
    seed: int = 1

    def _coefficients(self) -> tuple[list[int], list[int]]:
        rng = random.Random(self.seed)
        a = [rng.randrange(1, _MERSENNE_PRIME) for _ in range(self.num_perm)]
        b = [rng.randrange(0, _MERSENNE_PRIME) for _ in range(self.num_perm)]
        return a, b

    def signature(self, shingle_set: set[int]) -> tuple[int, ...]:
        """MinHash signature of a shingle set."""
        if not shingle_set:
            return tuple([_MAX_HASH] * self.num_perm)
        a, b = self._coefficients()
        items = list(shingle_set)
        sig = []
        for ai, bi in zip(a, b):
            best = _MAX_HASH + 1
            for x in items:
                h = ((ai * x + bi) % _MERSENNE_PRIME) & _MAX_HASH
                if h < best:
                    best = h
            sig.append(best)
        return tuple(sig)


def estimate_jaccard(sig_a: tuple[int, ...], sig_b: tuple[int, ...]) -> float:
    """Estimated Jaccard similarity from two signatures."""
    if len(sig_a) != len(sig_b) or not sig_a:
        raise ValueError("signatures must be equal-length and non-empty")
    agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
    return agree / len(sig_a)


def exact_jaccard(set_a: set[int], set_b: set[int]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union if union else 0.0


def _lsh_candidates(
    signatures: list[tuple[int, ...]], bands: int
) -> set[tuple[int, int]]:
    """Candidate pairs from LSH banding over the signatures."""
    if not signatures:
        return set()
    num_perm = len(signatures[0])
    rows = max(1, num_perm // bands)
    candidates: set[tuple[int, int]] = set()
    for band in range(bands):
        buckets: dict[tuple[int, ...], list[int]] = {}
        lo = band * rows
        hi = min(lo + rows, num_perm)
        if lo >= hi:
            break
        for index, sig in enumerate(signatures):
            key = sig[lo:hi]
            buckets.setdefault(key, []).append(index)
        for members in buckets.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    candidates.add((members[i], members[j]))
    return candidates


def deduplicate(
    texts: list[str],
    threshold: float = 0.8,
    num_perm: int = 64,
    shingle_k: int = 8,
    bands: int = 16,
    seed: int = 1,
) -> list[int]:
    """Indices of texts to *keep* after near-duplicate removal.

    Signatures are banded into LSH buckets; candidate pairs above the
    estimated-Jaccard threshold are clustered and only the first member
    (lowest index) of every cluster survives — mirroring "keep one copy
    of each near-duplicate group".
    """
    hasher = MinHasher(num_perm=num_perm, seed=seed)
    signatures = [hasher.signature(shingles(t, shingle_k)) for t in texts]
    parent = list(range(len(texts)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[max(rx, ry)] = min(rx, ry)

    for i, j in _lsh_candidates(signatures, bands):
        if estimate_jaccard(signatures[i], signatures[j]) >= threshold:
            union(i, j)

    return [index for index in range(len(texts)) if find(index) == index]
