"""Containers for corpus source files and assembled training corpora."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceFile:
    """One file gathered from a corpus source.

    Attributes:
        path: repository-relative path (e.g. ``"riscy/alu.v"``).
        text: file contents.
        origin: provenance tag (``"github"`` or ``"textbook"``).
    """

    path: str
    text: str
    origin: str = "github"

    @property
    def size(self) -> int:
        return len(self.text)

    @property
    def extension(self) -> str:
        dot = self.path.rfind(".")
        return self.path[dot:] if dot >= 0 else ""


@dataclass
class Corpus:
    """A collection of source files plus bookkeeping of filter decisions."""

    files: list[SourceFile] = field(default_factory=list)
    dropped: dict[str, int] = field(default_factory=dict)

    def add(self, source: SourceFile) -> None:
        self.files.append(source)

    def drop(self, reason: str, count: int = 1) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + count

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files)

    def __len__(self) -> int:
        return len(self.files)

    def training_text(self, separator: str = "\n\n") -> str:
        """Concatenate all files into one training stream."""
        return separator.join(f.text for f in self.files)

    def stats(self) -> dict:
        """Summary statistics in the shape the paper reports (Sec. III-A)."""
        return {
            "files": len(self.files),
            "bytes": self.total_bytes,
            "dropped": dict(self.dropped),
            "by_origin": {
                origin: sum(1 for f in self.files if f.origin == origin)
                for origin in sorted({f.origin for f in self.files})
            },
        }
