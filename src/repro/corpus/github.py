"""Synthetic GitHub snapshot and the BigQuery-style gathering step.

The paper (Sec. III-A) gathers Verilog with a Google BigQuery query over a
2.8M-repository snapshot, "looking for keywords such as 'Verilog' and
files with '.v' extension".  Offline, :class:`SyntheticGitHub` builds a
deterministic snapshot with the same pathologies the real pipeline must
survive:

* forked/duplicated files (exact and near duplicates) — caught by MinHash;
* non-Verilog files matching the keyword query (``.vhd``, READMEs);
* ``.v`` files with no ``module``/``endmodule`` pair (header-only files);
* oversized generated netlists (>= 20K characters).

:func:`bigquery_verilog_query` mimics the query semantics so the rest of
the pipeline is identical to the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .documents import SourceFile
from .generators import random_module, random_verilog_file

_REPO_WORDS = (
    "risc", "uart", "fifo", "dsp", "soc", "cache", "axi", "spi", "i2c",
    "fpga", "cpu", "gpu", "crypto", "net", "dma", "pcie", "ddr", "hdmi",
)


@dataclass
class Repository:
    """One synthetic repository: a name plus files."""

    name: str
    description: str
    files: list[SourceFile] = field(default_factory=list)


class SyntheticGitHub:
    """Deterministic stand-in for the GitHub snapshot queried via BigQuery."""

    def __init__(
        self,
        repos: int = 120,
        seed: int = 2023,
        fork_fraction: float = 0.15,
        near_dup_fraction: float = 0.10,
        noise_fraction: float = 0.20,
    ):
        self.repos = repos
        self.seed = seed
        self.fork_fraction = fork_fraction
        self.near_dup_fraction = near_dup_fraction
        self.noise_fraction = noise_fraction
        self._snapshot: list[Repository] | None = None

    # ------------------------------------------------------------------
    def snapshot(self) -> list[Repository]:
        """Build (once) and return the full repository snapshot."""
        if self._snapshot is None:
            self._snapshot = self._build()
        return self._snapshot

    def _build(self) -> list[Repository]:
        rng = random.Random(self.seed)
        repositories: list[Repository] = []
        for index in range(self.repos):
            word = rng.choice(_REPO_WORDS)
            name = f"{word}-{index:04d}"
            verilog_related = rng.random() < 0.8
            description = (
                f"A Verilog implementation of a {word} block"
                if verilog_related
                else f"Tools for {word} development"
            )
            repo = Repository(name=name, description=description)
            file_count = rng.randrange(2, 9)
            for file_index in range(file_count):
                repo.files.append(self._make_file(rng, name, file_index))
            repositories.append(repo)

        self._add_forks(rng, repositories)
        return repositories

    def _make_file(
        self, rng: random.Random, repo_name: str, index: int
    ) -> SourceFile:
        roll = rng.random()
        if roll < self.noise_fraction:
            return self._noise_file(rng, repo_name, index)
        if roll < self.noise_fraction + 0.05:
            # oversized generated netlist (must be dropped by the size filter)
            body = random_module(rng) * 80
            filler = "// synthesized netlist line\n" * 600
            return SourceFile(
                path=f"{repo_name}/gen/netlist_{index}.v",
                text=body + filler,
                origin="github",
            )
        text = random_verilog_file(rng)
        return SourceFile(
            path=f"{repo_name}/rtl/block_{index}.v", text=text, origin="github"
        )

    def _noise_file(
        self, rng: random.Random, repo_name: str, index: int
    ) -> SourceFile:
        kind = rng.randrange(3)
        if kind == 0:
            return SourceFile(
                path=f"{repo_name}/README.md",
                text=f"# {repo_name}\nA Verilog project.\n",
                origin="github",
            )
        if kind == 1:
            # VHDL file that the keyword query may surface
            return SourceFile(
                path=f"{repo_name}/rtl/block_{index}.vhd",
                text="entity blk is end entity;\narchitecture rtl of blk is begin end;\n",
                origin="github",
            )
        # a .v file without a module/endmodule pair (macros/includes only)
        return SourceFile(
            path=f"{repo_name}/include/defines_{index}.v",
            text="`define DATA_W 32\n`define ADDR_W 16\n// common macros\n",
            origin="github",
        )

    def _add_forks(
        self, rng: random.Random, repositories: list[Repository]
    ) -> None:
        """Copy files across repos: exact forks and near duplicates."""
        verilog_files = [
            source
            for repo in repositories
            for source in repo.files
            if source.path.endswith(".v") and "module" in source.text
        ]
        if not verilog_files:
            return
        fork_count = int(len(verilog_files) * self.fork_fraction)
        near_count = int(len(verilog_files) * self.near_dup_fraction)
        for index in range(fork_count):
            victim = rng.choice(verilog_files)
            target = rng.choice(repositories)
            target.files.append(
                SourceFile(
                    path=f"{target.name}/fork/copy_{index}.v",
                    text=victim.text,
                    origin="github",
                )
            )
        for index in range(near_count):
            victim = rng.choice(verilog_files)
            mutated = victim.text.replace("clk", "clock").replace(
                "rst", "reset_n"
            )
            mutated = "// forked and renamed\n" + mutated
            target = rng.choice(repositories)
            target.files.append(
                SourceFile(
                    path=f"{target.name}/fork/near_{index}.v",
                    text=mutated,
                    origin="github",
                )
            )


def bigquery_verilog_query(
    snapshot: list[Repository],
    keywords: tuple[str, ...] = ("verilog",),
    extension: str = ".v",
) -> list[SourceFile]:
    """The paper's gathering query: keyword match OR target extension.

    Matches the described BigQuery semantics: select files from
    repositories whose description mentions a keyword, plus any file with
    the ``.v`` extension.  Intentionally over-approximates (keyword repos
    contribute their READMEs etc.) — downstream filters clean this up,
    exactly as in the paper.
    """
    lowered = tuple(k.lower() for k in keywords)
    selected: list[SourceFile] = []
    for repo in snapshot:
        repo_matches = any(k in repo.description.lower() for k in lowered)
        for source in repo.files:
            if source.path.endswith(extension) or repo_matches:
                selected.append(source)
    return selected
