"""``python -m repro`` entry point."""

import sys

from .cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream consumer (e.g. ``| head``) closed the pipe; the
    # conventional exit for a SIGPIPE'd filter, without the traceback.
    sys.stderr.close()
    code = 141
sys.exit(code)
