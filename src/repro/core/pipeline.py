"""The VGen pipeline facade (paper Fig. 1, end to end).

One object that walks the paper's eight numbered steps: gather the
training corpus (1-2), pick the pre-trained models (3), fine-tune (4-5),
prompt (6), generate completions (7), and evaluate them against the test
benches (8) — producing the tables and figures of Sec. V.

This is the primary public API; everything it composes is importable from
the subpackages for finer-grained use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..corpus import CorpusConfig, TrainingCorpus, build_corpus
from ..eval import (
    Evaluator,
    Headline,
    SkippedJob,
    Sweep,
    SweepConfig,
    headline_numbers,
    table3,
    table4,
)
from ..models import (
    FineTuneReport,
    LanguageModel,
    finetune_zoo_model,
    make_model,
    paper_model_variants,
)


@dataclass
class VGenConfig:
    """Configuration for a full pipeline run."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    sweep: SweepConfig = field(default_factory=SweepConfig)
    seed: int = 0
    workers: int = 1  # sweep executor pool width (1 = serial)


@dataclass
class VGenResult:
    """Everything a pipeline run produced."""

    corpus: TrainingCorpus
    finetune_reports: list[FineTuneReport]
    sweep: Sweep
    table3: dict
    table4: dict
    headline: Headline
    skipped: list[SkippedJob] = field(default_factory=list)
    sweep_stats: dict = field(default_factory=dict)


class VGenPipeline:
    """Run the paper's experimental platform end to end.

    Example::

        from repro.core import VGenPipeline

        result = VGenPipeline().run()
        print(result.headline)
    """

    def __init__(self, config: VGenConfig | None = None):
        self.config = config or VGenConfig()
        self.evaluator = Evaluator()

    # ------------------------------------------------------------------
    def build_corpus(self) -> TrainingCorpus:
        """Steps 1-2: gather and clean the training corpus."""
        return build_corpus(self.config.corpus)

    def models(self, fine_tune: bool = True) -> list[LanguageModel]:
        """Steps 3-5: the Table-I models, fine-tuned where applicable.

        With ``fine_tune=False`` only the pre-trained variants are
        returned (the RQ1 baseline).
        """
        if not fine_tune:
            return [
                m for m in paper_model_variants(self.config.seed)
                if not m.fine_tuned
            ]
        return paper_model_variants(self.config.seed)

    def finetune(self, names: list[str] | None = None) -> tuple[
        list[LanguageModel], list[FineTuneReport]
    ]:
        """Step 4 explicitly: fine-tune named models on the built corpus."""
        names = names or [
            "megatron-355m", "codegen-2b", "codegen-6b",
            "j1-large-7b", "codegen-16b",
        ]
        models: list[LanguageModel] = []
        reports: list[FineTuneReport] = []
        for name in names:
            model, report = finetune_zoo_model(
                name, self.config.corpus, seed=self.config.seed
            )
            models.append(model)
            reports.append(report)
        return models, reports

    def evaluate(self, models: list[LanguageModel]) -> Sweep:
        """Steps 6-8: prompt, generate, compile, run test benches."""
        return self.evaluate_detailed(models).sweep

    def evaluate_detailed(self, models: list[LanguageModel]):
        """Like :meth:`evaluate` but returns the full service
        :class:`~repro.eval.jobs.SweepResult` (skips, errors, stats)."""
        from ..api import run_sweep as service_run_sweep

        return service_run_sweep(
            self.config.sweep,
            models=models,
            evaluator=self.evaluator,
            workers=self.config.workers,
        )

    # ------------------------------------------------------------------
    def run(self) -> VGenResult:
        """The whole pipeline; returns tables, figures data and headlines."""
        corpus = self.build_corpus()
        ft_models, reports = self.finetune()
        pt_models = self.models(fine_tune=False)
        sweep_result = self.evaluate_detailed(pt_models + ft_models)
        sweep = sweep_result.sweep
        return VGenResult(
            corpus=corpus,
            finetune_reports=reports,
            sweep=sweep,
            table3=table3(sweep),
            table4=table4(sweep),
            headline=headline_numbers(sweep),
            skipped=sweep_result.skipped,
            sweep_stats=sweep_result.stats,
        )


def quick_evaluate(
    model: LanguageModel,
    problem_numbers: tuple[int, ...] | None = None,
    temperature: float = 0.1,
    n: int = 10,
) -> Sweep:
    """Evaluate one model at one temperature (convenience for examples).

    Shim over :func:`repro.api.evaluate_model`, which also exposes the
    skip/error records and executor stats.
    """
    from ..api import evaluate_model

    return evaluate_model(
        model, problem_numbers=problem_numbers, temperature=temperature, n=n
    ).sweep


__all__ = [
    "VGenConfig",
    "VGenPipeline",
    "VGenResult",
    "make_model",
    "quick_evaluate",
]
