"""Primary public API: the end-to-end VGen pipeline."""

from .pipeline import VGenConfig, VGenPipeline, VGenResult, quick_evaluate

__all__ = ["VGenConfig", "VGenPipeline", "VGenResult", "quick_evaluate"]
