"""Dependency-free metrics: counters, gauges, streaming histograms.

A :class:`MetricsRegistry` is a thread-safe bag of labelled series.
Counters and gauges are plain floats; histograms are streaming
log-bucket sketches (geometric buckets, ~9.6% relative width) that
answer p50/p95/p99 in O(buckets) without retaining samples, so the
always-on stage timers can run for millions of evaluations at constant
memory.

The process-wide default lives at :data:`REGISTRY`; servers expose its
:meth:`~MetricsRegistry.snapshot` as ``GET /metrics`` (JSON) and
:func:`render_prometheus` as ``GET /metrics/prom`` (text exposition
format).  Tests grab a private registry or :func:`reset_registry`.
"""

from __future__ import annotations

import math
import threading

#: geometric bucket base: 48 buckets per decade, ~9.6% relative error
_BUCKET_BASE = 10.0 ** (1.0 / 48.0)
_LOG_BASE = math.log(_BUCKET_BASE)
#: values at or below this collapse into the floor bucket (sub-100ns)
_FLOOR = 1e-9

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Streaming log-bucket histogram with exact count/sum/min/max.

    ``observe`` is a dict increment; quantiles interpolate within the
    geometric bucket that crosses the target rank, which bounds the
    relative error at one bucket width.  Not thread-safe on its own —
    the registry serializes access.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = (
            int(math.floor(math.log(value) / _LOG_BASE))
            if value > _FLOOR
            else int(math.floor(math.log(_FLOOR) / _LOG_BASE))
        )
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0 < q <= 1); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            width = self.buckets[index]
            if seen + width >= rank:
                lo = _BUCKET_BASE**index
                hi = _BUCKET_BASE ** (index + 1)
                fraction = (rank - seen) / width
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)
            seen += width
        return self.max  # pragma: no cover — float-rounding fallback

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Thread-safe registry of labelled counters, gauges, histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], float] = {}
        self._gauges: dict[tuple[str, LabelKey], float] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    def histogram_snapshot(self, name: str, **labels) -> dict:
        with self._lock:
            histogram = self._histograms.get((name, _label_key(labels)))
            return histogram.snapshot() if histogram else Histogram().snapshot()

    def snapshot(self) -> dict:
        """Everything, as plain JSON-ready rows (sorted, deterministic)."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(key), "value": value}
                for (name, key), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(key), "value": value}
                for (name, key), value in sorted(self._gauges.items())
            ]
            histograms = [
                {"name": name, "labels": dict(key), **histogram.snapshot()}
                for (name, key), histogram in sorted(self._histograms.items())
            ]
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _escape_label_value(value: str) -> str:
    """Escape a label value per the 0.0.4 text exposition format.

    Backslash first so the other two escapes aren't double-escaped.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_series(name: str, labels: dict, value: float,
                 extra: dict | None = None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if pairs:
        rendered = ",".join(
            f'{key}="{_escape_label_value(value_)}"'
            for key, value_ in sorted(pairs.items())
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def append_snapshot_lines(
    lines: list[str],
    typed: set[str],
    snapshot: dict,
    extra_labels: dict | None = None,
) -> None:
    """Append one snapshot's exposition rows to ``lines``.

    ``typed`` carries the ``# TYPE``-declared names across calls so a
    caller can merge several snapshots (the fleet renderer stacks the
    local registry plus one snapshot per worker) without duplicate type
    declarations.  ``extra_labels`` is stamped onto every series — the
    fleet path uses it for the per-worker label.
    """

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    def labelled(labels: dict) -> dict:
        if not extra_labels:
            return labels
        return {**labels, **extra_labels}

    for row in snapshot.get("counters", ()):
        declare(row["name"], "counter")
        lines.append(
            _prom_series(row["name"], labelled(row["labels"]), row["value"])
        )
    for row in snapshot.get("gauges", ()):
        declare(row["name"], "gauge")
        lines.append(
            _prom_series(row["name"], labelled(row["labels"]), row["value"])
        )
    for row in snapshot.get("histograms", ()):
        name = row["name"]
        declare(name, "summary")
        for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
            lines.append(
                _prom_series(name, labelled(row["labels"]), row[q_key],
                             {"quantile": q_label})
            )
        lines.append(_prom_series(f"{name}_count", labelled(row["labels"]),
                                  row["count"]))
        lines.append(_prom_series(f"{name}_sum", labelled(row["labels"]),
                                  row["sum"]))


def render_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Histograms render as summaries: ``{quantile="..."}`` series plus
    ``_count`` / ``_sum``.  Series are sorted, so the output is stable
    for a given registry state (the CI parity check diffs both servers).
    """
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    append_snapshot_lines(lines, set(), registry.snapshot())
    return "\n".join(lines) + "\n"


#: the process-wide default registry every instrumentation site uses
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def reset_registry() -> None:
    """Clear the default registry (test isolation; cheap, lock-guarded)."""
    REGISTRY.reset()


__all__ = [
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "append_snapshot_lines",
    "get_registry",
    "render_prometheus",
    "reset_registry",
]
