"""Fleet telemetry: worker-side pushes, coordinator-side merge.

PR 7 gave every process its own :class:`~repro.obs.metrics.MetricsRegistry`
behind ``GET /metrics`` — which means observing a fleet required scraping
every worker.  This module inverts the flow: each worker periodically
pushes *registry deltas* to the coordinator (``POST /telemetry``) and the
coordinator merges them into a fleet-wide view, so one scrape of the
coordinator's ``GET /metrics`` / ``GET /metrics/prom`` covers every live
worker, with per-worker labels and staleness marks for workers that
stopped pushing.

Two halves:

* :class:`TelemetryPusher` runs inside the worker loop.  It snapshots
  the registry, sends counter/histogram *deltas* (gauges travel as
  absolutes) so the merge is idempotent across worker restarts, and is
  failure-tolerant by design: a push failure can never raise into the
  work loop, and a coordinator without the route (older build) disables
  the pusher after a few attempts instead of hammering it.
* :class:`TelemetryHub` lives on the service app.  ``ingest`` folds a
  push into per-worker accumulators; ``fleet_snapshot`` exposes them in
  registry-snapshot row shape so the JSON route embeds them directly and
  :func:`render_fleet_prometheus` stacks them under the local registry's
  exposition text with shared ``# TYPE`` declarations.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .metrics import (
    REGISTRY,
    MetricsRegistry,
    append_snapshot_lines,
)

#: consecutive failures after which a pusher stops trying (the
#: coordinator predates /telemetry, or is simply gone)
MAX_PUSH_FAILURES = 3


def _series_key(row: dict) -> tuple:
    return (row["name"], tuple(sorted(row["labels"].items())))


class TelemetryPusher:
    """Periodic registry-delta uploads from one worker.

    ``send`` is any callable taking the payload dict and raising on
    failure — the sync worker binds it to its transport, the async
    worker drives the ``due()``/``payload()``/``commit()`` primitives
    directly so the HTTP await stays in its own event loop.
    """

    def __init__(
        self,
        send: "Callable[[dict], object] | None",
        worker_id: str,
        interval: float = 2.0,
        registry: "MetricsRegistry | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.send = send
        self.worker_id = str(worker_id)
        self.interval = float(interval)
        self.registry = registry if registry is not None else REGISTRY
        self.clock = clock
        self.disabled = False
        self.pushes = 0
        self.failures = 0
        self._consecutive_failures = 0
        self._seq = 0
        self._last_push = -float("inf")
        self._base_counters: dict[tuple, float] = {}
        self._base_histograms: dict[tuple, tuple[int, float]] = {}
        self._pending: "dict | None" = None

    # ------------------------------------------------------------------
    # Primitives (async worker drives these directly)
    # ------------------------------------------------------------------
    def due(self) -> bool:
        """True when the push interval elapsed (and pushing still works)."""
        if self.disabled:
            return False
        return (self.clock() - self._last_push) >= self.interval

    def payload(self) -> dict:
        """Build the next push: deltas vs the last *committed* baseline.

        Does not advance the baseline — call :meth:`commit` once the
        send succeeded, so a failed push's deltas ride along with the
        next attempt instead of being lost.
        """
        snapshot = self.registry.snapshot()
        counters = []
        for row in snapshot["counters"]:
            key = _series_key(row)
            delta = row["value"] - self._base_counters.get(key, 0.0)
            if delta:
                counters.append(
                    {"name": row["name"], "labels": row["labels"],
                     "value": delta}
                )
        histograms = []
        for row in snapshot["histograms"]:
            key = _series_key(row)
            base_count, base_sum = self._base_histograms.get(key, (0, 0.0))
            count_delta = row["count"] - base_count
            if count_delta:
                histograms.append(
                    {
                        "name": row["name"], "labels": row["labels"],
                        "count": count_delta,
                        "sum": row["sum"] - base_sum,
                        "min": row["min"], "max": row["max"],
                        "p50": row["p50"], "p95": row["p95"],
                        "p99": row["p99"],
                    }
                )
        self._pending = snapshot
        self._seq += 1
        return {
            "worker": self.worker_id,
            "seq": self._seq,
            "sent_unix": time.time(),
            "counters": counters,
            "gauges": snapshot["gauges"],
            "histograms": histograms,
        }

    def commit(self) -> None:
        """Advance baselines to the snapshot behind the last payload."""
        snapshot, self._pending = self._pending, None
        if snapshot is None:
            return
        self._base_counters = {
            _series_key(row): row["value"] for row in snapshot["counters"]
        }
        self._base_histograms = {
            _series_key(row): (row["count"], row["sum"])
            for row in snapshot["histograms"]
        }
        self._last_push = self.clock()
        self.pushes += 1
        self._consecutive_failures = 0

    def note_failure(self) -> None:
        self._pending = None
        self.failures += 1
        self._consecutive_failures += 1
        # back off to the next interval rather than retrying immediately
        self._last_push = self.clock()
        if self._consecutive_failures >= MAX_PUSH_FAILURES:
            self.disabled = True

    # ------------------------------------------------------------------
    # Sync worker API
    # ------------------------------------------------------------------
    def push(self) -> bool:
        """One forced push; swallows every error (telemetry is best-effort)."""
        if self.disabled or self.send is None:
            return False
        try:
            self.send(self.payload())
        except Exception:
            self.note_failure()
            return False
        self.commit()
        return True

    def maybe_push(self) -> bool:
        """Push iff the interval elapsed; the worker loop calls this."""
        if not self.due():
            return False
        return self.push()


class TelemetryHub:
    """Coordinator-side merge of worker telemetry pushes.

    Counters accumulate pushed deltas, gauges are last-write-wins,
    histograms accumulate ``count``/``sum`` and keep the latest quantile
    estimates (a cross-worker quantile merge would need the raw bucket
    sketches; count-weighted latest is the honest summary the dashboard
    needs).  Thread-safe: HTTP handler threads ingest concurrently.
    """

    def __init__(
        self,
        stale_after: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stale_after = float(stale_after)
        self.clock = clock
        self._lock = threading.Lock()
        self._workers: dict[str, dict] = {}
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, dict] = {}

    # ------------------------------------------------------------------
    def ingest(self, payload: "dict | None") -> dict:
        """Merge one ``POST /telemetry`` body; returns the ack."""
        if not isinstance(payload, dict):
            raise ValueError("telemetry payload must be an object")
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ValueError("telemetry payload missing worker id")
        with self._lock:
            row = self._workers.setdefault(
                worker,
                {"worker": worker, "pushes": 0, "seq": 0, "first_seen":
                 self.clock(), "last_seen": 0.0, "last_unix": 0.0},
            )
            row["pushes"] += 1
            row["seq"] = int(payload.get("seq", row["seq"]) or 0)
            row["last_seen"] = self.clock()
            row["last_unix"] = float(payload.get("sent_unix", 0.0) or 0.0)
            for entry in payload.get("counters") or ():
                key = self._key(worker, entry)
                if key is None:
                    continue
                self._counters[key] = (
                    self._counters.get(key, 0.0) + float(entry["value"])
                )
            for entry in payload.get("gauges") or ():
                key = self._key(worker, entry)
                if key is None:
                    continue
                self._gauges[key] = float(entry["value"])
            for entry in payload.get("histograms") or ():
                key = self._key(worker, entry)
                if key is None:
                    continue
                merged = self._histograms.get(key)
                if merged is None:
                    merged = self._histograms[key] = {
                        "count": 0, "sum": 0.0, "min": float(entry["min"]),
                        "max": float(entry["max"]),
                    }
                merged["count"] += int(entry["count"])
                merged["sum"] += float(entry["sum"])
                merged["min"] = min(merged["min"], float(entry["min"]))
                merged["max"] = max(merged["max"], float(entry["max"]))
                for quantile in ("p50", "p95", "p99"):
                    merged[quantile] = float(entry.get(quantile, 0.0))
            pushes = row["pushes"]
        return {"ok": True, "worker": worker, "pushes": pushes}

    @staticmethod
    def _key(worker: str, entry: object) -> "tuple | None":
        if not isinstance(entry, dict) or "name" not in entry:
            return None
        labels = entry.get("labels")
        labels = dict(labels) if isinstance(labels, dict) else {}
        labels["worker"] = worker
        return (str(entry["name"]), tuple(sorted(labels.items())))

    # ------------------------------------------------------------------
    def workers(self) -> list[dict]:
        """Liveness rows, one per worker ever seen (stale = stopped)."""
        now = self.clock()
        with self._lock:
            rows = []
            for row in sorted(self._workers.values(),
                              key=lambda r: r["worker"]):
                age = now - row["last_seen"]
                rows.append(
                    {
                        "worker": row["worker"],
                        "pushes": row["pushes"],
                        "seq": row["seq"],
                        "age_seconds": round(age, 3),
                        "stale": age > self.stale_after,
                    }
                )
        return rows

    def metrics_snapshot(self) -> dict:
        """Merged series in registry-snapshot row shape (worker-labelled).

        Includes a synthetic ``telemetry_worker_up`` gauge per worker
        (0.0 once stale) so a Prometheus alert on dead workers is one
        expression away.
        """
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            histograms = [
                {"name": name, "labels": dict(labels), **dict(merged)}
                for (name, labels), merged in sorted(
                    self._histograms.items()
                )
            ]
        for row in self.workers():
            gauges.append(
                {
                    "name": "telemetry_worker_up",
                    "labels": {"worker": row["worker"]},
                    "value": 0.0 if row["stale"] else 1.0,
                }
            )
            gauges.append(
                {
                    "name": "telemetry_push_age_seconds",
                    "labels": {"worker": row["worker"]},
                    "value": row["age_seconds"],
                }
            )
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def fleet_snapshot(self) -> dict:
        """The ``GET /metrics`` JSON block: liveness + merged series."""
        return {"workers": self.workers(), "metrics": self.metrics_snapshot()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)


def render_fleet_prometheus(
    registry: "MetricsRegistry | None" = None,
    hub: "TelemetryHub | None" = None,
) -> str:
    """Local registry + merged fleet series as one exposition document.

    ``# TYPE`` declarations are shared across both halves, so a metric
    present locally and in worker pushes is declared once.  With no hub
    (or an empty one) the output is byte-identical to
    :func:`~repro.obs.metrics.render_prometheus`.
    """
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    typed: set[str] = set()
    append_snapshot_lines(lines, typed, registry.snapshot())
    if hub is not None and len(hub):
        append_snapshot_lines(lines, typed, hub.metrics_snapshot())
    return "\n".join(lines) + "\n"


__all__ = [
    "MAX_PUSH_FAILURES",
    "TelemetryHub",
    "TelemetryPusher",
    "render_fleet_prometheus",
]
