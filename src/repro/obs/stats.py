"""Trace-log summarizer: the engine behind ``repro stats``.

Reads one or more ``--trace`` NDJSON files (see
:class:`repro.obs.trace.TraceWriter` for the frame schema), validates
them line by line, and aggregates:

* per-stage time split — ``generate`` vs ``parse``/``elaborate``/
  ``sim``/``testbench`` (the signal for the sim-compile roadmap item);
* job latency — exact nearest-rank p50/p95/p99 over ``job`` spans;
* per-worker throughput — jobs per second of per-worker wall clock
  (monotonic span timestamps are only compared within one file, so
  multi-worker traces merge safely);
* repair-loop attempt counts by verdict.

Schema violations raise :class:`TraceFormatError` with the offending
line number — the CI ``obs-smoke`` job uses ``repro stats`` as the
trace-file validator.
"""

from __future__ import annotations

import glob
import json
import math
import os
from typing import Sequence

#: frame types a trace file may contain
FRAME_TYPES = ("meta", "span", "metrics", "profile")

#: file suffixes treated as trace files when a directory is given
TRACE_SUFFIXES = (".trace", ".ndjson")

#: span names counted as leaf stages in the time-split table
STAGE_NAMES = ("generate", "parse", "elaborate", "analysis", "sim",
               "testbench")


class TraceFormatError(ValueError):
    """A trace file line violated the NDJSON trace schema."""


def _validate(frame: object, where: str) -> dict:
    if not isinstance(frame, dict):
        raise TraceFormatError(f"{where}: expected an object, got "
                               f"{type(frame).__name__}")
    kind = frame.get("type")
    if kind not in FRAME_TYPES:
        raise TraceFormatError(
            f"{where}: unknown frame type {kind!r}; expected one of "
            f"{sorted(FRAME_TYPES)}"
        )
    if kind == "span":
        if not isinstance(frame.get("name"), str) or not frame["name"]:
            raise TraceFormatError(f"{where}: span frame missing name")
        if not isinstance(frame.get("dur"), (int, float)):
            raise TraceFormatError(f"{where}: span frame missing dur")
        if "tags" in frame and not isinstance(frame["tags"], dict):
            raise TraceFormatError(f"{where}: span tags must be an object")
    elif kind == "meta":
        if not isinstance(frame.get("version"), int):
            raise TraceFormatError(f"{where}: meta frame missing version")
    elif kind == "metrics":
        if not isinstance(frame.get("metrics"), dict):
            raise TraceFormatError(f"{where}: metrics frame missing metrics")
    elif kind == "profile":
        if not isinstance(frame.get("constructs"), list):
            raise TraceFormatError(
                f"{where}: profile frame missing constructs"
            )
        if not isinstance(frame.get("sim_seconds"), (int, float)):
            raise TraceFormatError(
                f"{where}: profile frame missing sim_seconds"
            )
    return frame


def load_trace(path: str) -> list[dict]:
    """Parse + validate one trace file; raises :class:`TraceFormatError`."""
    frames: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            where = f"{path}:{number}"
            try:
                frame = json.loads(stripped)
            except ValueError as exc:
                raise TraceFormatError(f"{where}: not JSON: {exc}") from None
            frames.append(_validate(frame, where))
    if not frames:
        raise TraceFormatError(f"{path}: empty trace (no frames)")
    return frames


def expand_trace_paths(patterns: Sequence[str]) -> list[str]:
    """Expand directories and glob patterns into trace-file paths.

    ``repro stats``/``repro hotspots`` accept, per argument: a literal
    file path, a directory (every ``.trace``/``.ndjson`` file inside,
    sorted), or a glob pattern (``'run-*.trace'``, quoted past the
    shell; ``**`` recurses).  An argument that expands to nothing is an
    error — a typo'd glob silently matching zero files would otherwise
    report an empty (healthy-looking) summary.
    """
    paths: list[str] = []
    for pattern in patterns:
        pattern = str(pattern)
        if os.path.isdir(pattern):
            matches = sorted(
                entry.path
                for entry in os.scandir(pattern)
                if entry.is_file() and entry.name.endswith(TRACE_SUFFIXES)
            )
            if not matches:
                raise TraceFormatError(
                    f"{pattern}: directory has no "
                    f"{'/'.join(TRACE_SUFFIXES)} files"
                )
            paths.extend(matches)
        elif any(ch in pattern for ch in "*?["):
            matches = sorted(glob.glob(pattern, recursive=True))
            if not matches:
                raise TraceFormatError(f"{pattern}: glob matched no files")
            paths.extend(matches)
        else:
            paths.append(pattern)
    seen: set[str] = set()
    unique: list[str] = []
    for path in paths:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def summarize_traces(paths: Sequence[str]) -> dict:
    """Aggregate one summary dict across ``paths`` (see module doc)."""
    stages = {
        name: {"count": 0, "seconds": 0.0} for name in STAGE_NAMES
    }
    job_durations: list[float] = []
    workers: dict[str, dict] = {}
    repair: dict[str, int] = {}
    spans_total = 0
    files = []
    profile_frames = 0
    profile_sim_seconds = 0.0
    constructs: dict[str, dict] = {}
    for source, path in enumerate(paths):
        frames = load_trace(path)
        files.append({"path": str(path), "frames": len(frames)})
        # the writer stamps its default tags once, in the meta header;
        # they apply to every span of the file (worker attribution)
        meta_tags: dict = {}
        for frame in frames:
            if frame.get("type") == "meta":
                tags = frame.get("tags")
                if isinstance(tags, dict):
                    meta_tags = tags
                break
        window: dict[str, list[float]] = {}
        for frame in frames:
            if frame.get("type") == "profile":
                profile_frames += 1
                profile_sim_seconds += float(frame.get("sim_seconds", 0.0))
                for entry in frame["constructs"]:
                    if not isinstance(entry, dict) or "path" not in entry:
                        continue
                    row = constructs.setdefault(
                        str(entry["path"]),
                        {"kind": str(entry.get("kind", "")),
                         "line": int(entry.get("line", 0) or 0),
                         "seconds": 0.0, "activations": 0,
                         "evals": 0, "steps": 0},
                    )
                    row["seconds"] += float(entry.get("seconds", 0.0))
                    row["activations"] += int(entry.get("activations", 0))
                    row["evals"] += int(entry.get("evals", 0))
                    row["steps"] += int(entry.get("steps", 0))
                continue
            if frame.get("type") != "span":
                continue
            spans_total += 1
            name = frame["name"]
            dur = float(frame["dur"])
            tags = frame.get("tags", {})
            if name in stages:
                stages[name]["count"] += 1
                stages[name]["seconds"] += dur
            elif name == "job":
                job_durations.append(dur)
                worker = str(
                    tags.get("worker")
                    or meta_tags.get("worker")
                    or f"file{source}"
                )
                row = workers.setdefault(
                    worker, {"jobs": 0, "busy_seconds": 0.0,
                             "wall_seconds": 0.0}
                )
                row["jobs"] += 1
                row["busy_seconds"] += dur
                if isinstance(frame.get("t"), (int, float)):
                    window.setdefault(worker, []).extend(
                        [float(frame["t"]), float(frame["t"]) + dur]
                    )
            elif name == "repair_attempt":
                verdict = str(tags.get("verdict", "unknown"))
                repair[verdict] = repair.get(verdict, 0) + 1
        for worker, points in window.items():
            workers[worker]["wall_seconds"] += max(points) - min(points)

    for row in workers.values():
        wall = row["wall_seconds"] or row["busy_seconds"]
        row["jobs_per_second"] = (row["jobs"] / wall) if wall > 0 else 0.0

    stage_total = sum(row["seconds"] for row in stages.values())
    for row in stages.values():
        row["share"] = (row["seconds"] / stage_total) if stage_total else 0.0

    job_durations.sort()
    jobs = {
        "count": len(job_durations),
        "seconds": sum(job_durations),
        "mean": (sum(job_durations) / len(job_durations))
        if job_durations else 0.0,
        "p50": _percentile(job_durations, 0.50),
        "p95": _percentile(job_durations, 0.95),
        "p99": _percentile(job_durations, 0.99),
    }
    construct_rows = [
        {"path": path, **row} for path, row in constructs.items()
    ]
    construct_rows.sort(key=lambda row: (-row["seconds"], row["path"]))
    attributed = sum(row["seconds"] for row in construct_rows)
    profile = {
        "frames": profile_frames,
        "sim_seconds": profile_sim_seconds,
        "attributed_seconds": attributed,
        "coverage": (attributed / profile_sim_seconds)
        if profile_sim_seconds > 0 else 0.0,
        "constructs": construct_rows,
    }
    return {
        "files": files,
        "spans": spans_total,
        "stages": stages,
        "stage_seconds_total": stage_total,
        "jobs": jobs,
        "workers": workers,
        "repair_attempts": repair,
        "profile": profile,
    }


def render_stats(summary: dict) -> str:
    """The ``repro stats`` human-readable report."""
    lines = [
        f"trace: {len(summary['files'])} file(s), "
        f"{summary['spans']} span(s)"
    ]
    lines.append("")
    lines.append(f"{'stage':<12}{'count':>8}{'seconds':>12}{'share':>9}")
    for name in STAGE_NAMES:
        row = summary["stages"][name]
        lines.append(
            f"{name:<12}{row['count']:>8}{row['seconds']:>12.4f}"
            f"{row['share']:>8.1%}"
        )
    jobs = summary["jobs"]
    lines.append("")
    lines.append(
        f"jobs: {jobs['count']}  mean {jobs['mean']:.4f}s  "
        f"p50 {jobs['p50']:.4f}s  p95 {jobs['p95']:.4f}s  "
        f"p99 {jobs['p99']:.4f}s"
    )
    if summary["workers"]:
        lines.append("")
        lines.append(f"{'worker':<24}{'jobs':>6}{'busy_s':>10}{'jobs/s':>9}")
        for worker in sorted(summary["workers"]):
            row = summary["workers"][worker]
            lines.append(
                f"{worker:<24}{row['jobs']:>6}{row['busy_seconds']:>10.3f}"
                f"{row['jobs_per_second']:>9.2f}"
            )
    if summary["repair_attempts"]:
        rendered = ", ".join(
            f"{verdict}={count}"
            for verdict, count in sorted(summary["repair_attempts"].items())
        )
        lines.append("")
        lines.append(f"repair attempts: {rendered}")
    profile = summary.get("profile") or {}
    if profile.get("frames"):
        lines.append("")
        lines.append(
            f"sim profile: {profile['frames']} run(s), "
            f"{profile['coverage']:.1%} of {profile['sim_seconds']:.4f}s "
            f"attributed — top constructs:"
        )
        for row in profile["constructs"][:5]:
            lines.append(
                f"  {row['path']:<28}{row['seconds']:>10.4f}s"
                f"{row['activations']:>8} act{row['evals']:>10} evals"
            )
        lines.append("  (full ranking: repro hotspots)")
    return "\n".join(lines)


def render_hotspots(summary: dict, coverage: float = 0.80) -> str:
    """The ``repro hotspots`` report: constructs ranked until ``coverage``.

    Ranks hottest-first and stops once the cumulative share of total
    sim wall time reaches ``coverage`` (the remainder is summarized on
    one line), which keeps the report focused on the constructs worth
    compiling first.
    """
    profile = summary.get("profile") or {}
    rows = profile.get("constructs") or []
    if not profile.get("frames") or not rows:
        return (
            "no profile frames found — record one with "
            "`repro sweep --trace FILE --profile`"
        )
    total = profile["sim_seconds"] or profile["attributed_seconds"]
    lines = [
        f"sim hotspots: {profile['frames']} profiled run(s), "
        f"{total:.4f}s sim wall time, "
        f"{profile['coverage']:.1%} attributed to {len(rows)} construct(s)"
    ]
    lines.append("")
    lines.append(
        f"{'construct':<32}{'seconds':>10}{'share':>8}{'cum':>8}"
        f"{'act':>8}{'evals':>10}{'evals/act':>11}"
    )
    cumulative = 0.0
    shown = 0
    for row in rows:
        share = (row["seconds"] / total) if total > 0 else 0.0
        cumulative += share
        per_activation = (
            row["evals"] / row["activations"] if row["activations"] else 0.0
        )
        lines.append(
            f"{row['path']:<32}{row['seconds']:>10.4f}{share:>8.1%}"
            f"{cumulative:>8.1%}{row['activations']:>8}{row['evals']:>10}"
            f"{per_activation:>11.1f}"
        )
        shown += 1
        if cumulative >= coverage:
            break
    remainder = len(rows) - shown
    if remainder > 0:
        rest = sum(row["seconds"] for row in rows[shown:])
        lines.append(
            f"... {remainder} more construct(s) totalling {rest:.4f}s"
        )
    return "\n".join(lines)


__all__ = [
    "FRAME_TYPES",
    "STAGE_NAMES",
    "TRACE_SUFFIXES",
    "TraceFormatError",
    "expand_trace_paths",
    "load_trace",
    "render_hotspots",
    "render_stats",
    "summarize_traces",
]
