"""Trace-log summarizer: the engine behind ``repro stats``.

Reads one or more ``--trace`` NDJSON files (see
:class:`repro.obs.trace.TraceWriter` for the frame schema), validates
them line by line, and aggregates:

* per-stage time split — ``generate`` vs ``parse``/``elaborate``/
  ``sim``/``testbench`` (the signal for the sim-compile roadmap item);
* job latency — exact nearest-rank p50/p95/p99 over ``job`` spans;
* per-worker throughput — jobs per second of per-worker wall clock
  (monotonic span timestamps are only compared within one file, so
  multi-worker traces merge safely);
* repair-loop attempt counts by verdict.

Schema violations raise :class:`TraceFormatError` with the offending
line number — the CI ``obs-smoke`` job uses ``repro stats`` as the
trace-file validator.
"""

from __future__ import annotations

import json
import math
from typing import Sequence

#: frame types a trace file may contain
FRAME_TYPES = ("meta", "span", "metrics")

#: span names counted as leaf stages in the time-split table
STAGE_NAMES = ("generate", "parse", "elaborate", "analysis", "sim",
               "testbench")


class TraceFormatError(ValueError):
    """A trace file line violated the NDJSON trace schema."""


def _validate(frame: object, where: str) -> dict:
    if not isinstance(frame, dict):
        raise TraceFormatError(f"{where}: expected an object, got "
                               f"{type(frame).__name__}")
    kind = frame.get("type")
    if kind not in FRAME_TYPES:
        raise TraceFormatError(
            f"{where}: unknown frame type {kind!r}; expected one of "
            f"{sorted(FRAME_TYPES)}"
        )
    if kind == "span":
        if not isinstance(frame.get("name"), str) or not frame["name"]:
            raise TraceFormatError(f"{where}: span frame missing name")
        if not isinstance(frame.get("dur"), (int, float)):
            raise TraceFormatError(f"{where}: span frame missing dur")
        if "tags" in frame and not isinstance(frame["tags"], dict):
            raise TraceFormatError(f"{where}: span tags must be an object")
    elif kind == "meta":
        if not isinstance(frame.get("version"), int):
            raise TraceFormatError(f"{where}: meta frame missing version")
    elif kind == "metrics":
        if not isinstance(frame.get("metrics"), dict):
            raise TraceFormatError(f"{where}: metrics frame missing metrics")
    return frame


def load_trace(path: str) -> list[dict]:
    """Parse + validate one trace file; raises :class:`TraceFormatError`."""
    frames: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            where = f"{path}:{number}"
            try:
                frame = json.loads(stripped)
            except ValueError as exc:
                raise TraceFormatError(f"{where}: not JSON: {exc}") from None
            frames.append(_validate(frame, where))
    if not frames:
        raise TraceFormatError(f"{path}: empty trace (no frames)")
    return frames


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def summarize_traces(paths: Sequence[str]) -> dict:
    """Aggregate one summary dict across ``paths`` (see module doc)."""
    stages = {
        name: {"count": 0, "seconds": 0.0} for name in STAGE_NAMES
    }
    job_durations: list[float] = []
    workers: dict[str, dict] = {}
    repair: dict[str, int] = {}
    spans_total = 0
    files = []
    for source, path in enumerate(paths):
        frames = load_trace(path)
        files.append({"path": str(path), "frames": len(frames)})
        # the writer stamps its default tags once, in the meta header;
        # they apply to every span of the file (worker attribution)
        meta_tags: dict = {}
        for frame in frames:
            if frame.get("type") == "meta":
                tags = frame.get("tags")
                if isinstance(tags, dict):
                    meta_tags = tags
                break
        window: dict[str, list[float]] = {}
        for frame in frames:
            if frame.get("type") != "span":
                continue
            spans_total += 1
            name = frame["name"]
            dur = float(frame["dur"])
            tags = frame.get("tags", {})
            if name in stages:
                stages[name]["count"] += 1
                stages[name]["seconds"] += dur
            elif name == "job":
                job_durations.append(dur)
                worker = str(
                    tags.get("worker")
                    or meta_tags.get("worker")
                    or f"file{source}"
                )
                row = workers.setdefault(
                    worker, {"jobs": 0, "busy_seconds": 0.0,
                             "wall_seconds": 0.0}
                )
                row["jobs"] += 1
                row["busy_seconds"] += dur
                if isinstance(frame.get("t"), (int, float)):
                    window.setdefault(worker, []).extend(
                        [float(frame["t"]), float(frame["t"]) + dur]
                    )
            elif name == "repair_attempt":
                verdict = str(tags.get("verdict", "unknown"))
                repair[verdict] = repair.get(verdict, 0) + 1
        for worker, points in window.items():
            workers[worker]["wall_seconds"] += max(points) - min(points)

    for row in workers.values():
        wall = row["wall_seconds"] or row["busy_seconds"]
        row["jobs_per_second"] = (row["jobs"] / wall) if wall > 0 else 0.0

    stage_total = sum(row["seconds"] for row in stages.values())
    for row in stages.values():
        row["share"] = (row["seconds"] / stage_total) if stage_total else 0.0

    job_durations.sort()
    jobs = {
        "count": len(job_durations),
        "seconds": sum(job_durations),
        "mean": (sum(job_durations) / len(job_durations))
        if job_durations else 0.0,
        "p50": _percentile(job_durations, 0.50),
        "p95": _percentile(job_durations, 0.95),
        "p99": _percentile(job_durations, 0.99),
    }
    return {
        "files": files,
        "spans": spans_total,
        "stages": stages,
        "stage_seconds_total": stage_total,
        "jobs": jobs,
        "workers": workers,
        "repair_attempts": repair,
    }


def render_stats(summary: dict) -> str:
    """The ``repro stats`` human-readable report."""
    lines = [
        f"trace: {len(summary['files'])} file(s), "
        f"{summary['spans']} span(s)"
    ]
    lines.append("")
    lines.append(f"{'stage':<12}{'count':>8}{'seconds':>12}{'share':>9}")
    for name in STAGE_NAMES:
        row = summary["stages"][name]
        lines.append(
            f"{name:<12}{row['count']:>8}{row['seconds']:>12.4f}"
            f"{row['share']:>8.1%}"
        )
    jobs = summary["jobs"]
    lines.append("")
    lines.append(
        f"jobs: {jobs['count']}  mean {jobs['mean']:.4f}s  "
        f"p50 {jobs['p50']:.4f}s  p95 {jobs['p95']:.4f}s  "
        f"p99 {jobs['p99']:.4f}s"
    )
    if summary["workers"]:
        lines.append("")
        lines.append(f"{'worker':<24}{'jobs':>6}{'busy_s':>10}{'jobs/s':>9}")
        for worker in sorted(summary["workers"]):
            row = summary["workers"][worker]
            lines.append(
                f"{worker:<24}{row['jobs']:>6}{row['busy_seconds']:>10.3f}"
                f"{row['jobs_per_second']:>9.2f}"
            )
    if summary["repair_attempts"]:
        rendered = ", ".join(
            f"{verdict}={count}"
            for verdict, count in sorted(summary["repair_attempts"].items())
        )
        lines.append("")
        lines.append(f"repair attempts: {rendered}")
    return "\n".join(lines)


__all__ = [
    "FRAME_TYPES",
    "STAGE_NAMES",
    "TraceFormatError",
    "load_trace",
    "render_stats",
    "summarize_traces",
]
