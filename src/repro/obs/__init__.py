"""Observability: metrics registry, span tracing, trace-log stats.

The cross-cutting layer behind every "measure where time goes" item on
the roadmap (sim-compile profiling, adaptive lease sizing, multi-tenant
p99 gates).  Three pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges, and streaming log-bucket histograms (p50/p95/p99),
  rendered as JSON (``GET /metrics``) or Prometheus-style text
  (``GET /metrics/prom``);
* :mod:`repro.obs.trace` — span-based tracing: a per-job trace context
  (:func:`job_tags`) flows planner → executor → backend → evaluator →
  simulator and through the repair loop; spans fan out to registered
  sinks, with :class:`TraceWriter` persisting them as replayable NDJSON
  (``--trace FILE`` on ``sweep``/``work``/``coordinate``);
* :mod:`repro.obs.stats` — the ``repro stats`` summarizer: per-stage
  time split, per-worker throughput, and job-latency percentiles from
  one or more trace files.

Stage timers (parse/elaborate/sim/testbench per problem) are always on
and feed the registry; spans cost nothing unless a sink is installed
(:func:`tracing_active` is a single list check on the hot path).
"""

from .metrics import (
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    render_prometheus,
    reset_registry,
)
from .stats import (
    TraceFormatError,
    load_trace,
    render_stats,
    summarize_traces,
)
from .trace import (
    TraceWriter,
    add_sink,
    current_tags,
    job_tags,
    record_span,
    remove_sink,
    span,
    tracing_active,
)

STAGES = ("generate", "parse", "elaborate", "analysis", "sim", "testbench")
"""Leaf stage names the per-stage timers emit (see ``stage_seconds``)."""


def observe_stage(stage: str, seconds: float, **tags) -> None:
    """One always-on stage timing: registry histogram + optional span.

    The registry side is unconditional (this is the profile that gates
    the sim-compile work); the span side only fires when a trace sink
    is installed, so the uninstrumented hot path pays one dict update.
    """
    labels = {"stage": stage}
    if "problem" in tags:
        labels["problem"] = tags["problem"]
    REGISTRY.observe("stage_seconds", seconds, **labels)
    if tracing_active():
        record_span(stage, seconds, **tags)


__all__ = [
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "STAGES",
    "TraceFormatError",
    "TraceWriter",
    "add_sink",
    "current_tags",
    "get_registry",
    "job_tags",
    "load_trace",
    "observe_stage",
    "record_span",
    "remove_sink",
    "render_prometheus",
    "render_stats",
    "reset_registry",
    "span",
    "summarize_traces",
    "tracing_active",
]
