"""Observability: metrics registry, span tracing, trace-log stats.

The cross-cutting layer behind every "measure where time goes" item on
the roadmap (sim-compile profiling, adaptive lease sizing, multi-tenant
p99 gates).  Three pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges, and streaming log-bucket histograms (p50/p95/p99),
  rendered as JSON (``GET /metrics``) or Prometheus-style text
  (``GET /metrics/prom``);
* :mod:`repro.obs.trace` — span-based tracing: a per-job trace context
  (:func:`job_tags`) flows planner → executor → backend → evaluator →
  simulator and through the repair loop; spans fan out to registered
  sinks, with :class:`TraceWriter` persisting them as replayable NDJSON
  (``--trace FILE`` on ``sweep``/``work``/``coordinate``);
* :mod:`repro.obs.stats` — the ``repro stats``/``repro hotspots``
  summarizers: per-stage time split, per-worker throughput, job-latency
  percentiles and construct-level hotspot rankings from one or more
  trace files (directories and globs expand);
* :mod:`repro.obs.profile` — the opt-in simulator profiler: wall time
  and eval counts per netlist construct, emitted as ``profile`` frames
  into the same trace files;
* :mod:`repro.obs.collect` — fleet telemetry: workers push registry
  deltas to the coordinator's ``POST /telemetry``; one coordinator
  scrape covers the fleet with per-worker labels and staleness marks;
* :mod:`repro.obs.dashboard` — the ``repro top`` terminal dashboard and
  the self-contained ``GET /dashboard`` HTML page, both polling
  ``/metrics`` + ``/shard/status``.

Stage timers (parse/elaborate/sim/testbench per problem) are always on
and feed the registry; spans cost nothing unless a sink is installed
(:func:`tracing_active` is a single list check on the hot path), and
the simulator profiler is off unless both enabled and traced.
"""

from .collect import (
    TelemetryHub,
    TelemetryPusher,
    render_fleet_prometheus,
)
from .dashboard import (
    dashboard_html,
    fetch_view,
    render_dashboard,
    run_top,
)
from .metrics import (
    Histogram,
    MetricsRegistry,
    REGISTRY,
    append_snapshot_lines,
    get_registry,
    render_prometheus,
    reset_registry,
)
from .profile import (
    SimProfiler,
    disable_profiling,
    enable_profiling,
    maybe_sim_profiler,
    profiling,
    profiling_enabled,
    record_profile,
)
from .stats import (
    TraceFormatError,
    expand_trace_paths,
    load_trace,
    render_hotspots,
    render_stats,
    summarize_traces,
)
from .trace import (
    TraceWriter,
    add_sink,
    current_tags,
    job_tags,
    record_frame,
    record_span,
    remove_sink,
    span,
    tracing_active,
)

STAGES = ("generate", "parse", "elaborate", "analysis", "sim", "testbench")
"""Leaf stage names the per-stage timers emit (see ``stage_seconds``)."""


def observe_stage(stage: str, seconds: float, **tags) -> None:
    """One always-on stage timing: registry histogram + optional span.

    The registry side is unconditional (this is the profile that gates
    the sim-compile work); the span side only fires when a trace sink
    is installed, so the uninstrumented hot path pays one dict update.
    """
    labels = {"stage": stage}
    if "problem" in tags:
        labels["problem"] = tags["problem"]
    REGISTRY.observe("stage_seconds", seconds, **labels)
    if tracing_active():
        record_span(stage, seconds, **tags)


__all__ = [
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "STAGES",
    "SimProfiler",
    "TelemetryHub",
    "TelemetryPusher",
    "TraceFormatError",
    "TraceWriter",
    "add_sink",
    "append_snapshot_lines",
    "current_tags",
    "dashboard_html",
    "disable_profiling",
    "enable_profiling",
    "expand_trace_paths",
    "fetch_view",
    "get_registry",
    "job_tags",
    "load_trace",
    "maybe_sim_profiler",
    "observe_stage",
    "profiling",
    "profiling_enabled",
    "record_frame",
    "record_profile",
    "record_span",
    "remove_sink",
    "render_dashboard",
    "render_fleet_prometheus",
    "render_hotspots",
    "render_prometheus",
    "render_stats",
    "reset_registry",
    "run_top",
    "span",
    "summarize_traces",
    "tracing_active",
]
