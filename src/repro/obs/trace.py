"""Span tracing: per-job context, sinks, NDJSON trace files.

A *span* is one timed operation: ``{"type": "span", "name": ...,
"t": <monotonic start>, "dur": <seconds>, "tags": {...}}``.  Spans fan
out to registered *sinks* — callables taking the frame dict — and cost
nothing when no sink is installed (:func:`tracing_active` is one list
check, which is what keeps the instrumented hot path within the
overhead budget).

The per-job trace context is a :mod:`contextvars` variable set by
executors around each job (:func:`job_tags`); everything recorded
underneath — backend generation, evaluator stages, simulator runs,
repair-loop rounds — inherits those tags without any signature
threading, across both thread-pool workers (the context is set inside
the worker thread) and asyncio tasks.

:class:`TraceWriter` is the file sink behind ``--trace FILE``: one
NDJSON frame per line, a ``meta`` header, spans as they complete, and a
final ``metrics`` frame carrying the registry snapshot, so a trace file
alone is enough for ``repro stats`` to rebuild the run profile.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from .metrics import REGISTRY

SpanSink = Callable[[dict], None]

_SINKS: list[SpanSink] = []
_SINKS_LOCK = threading.Lock()
_TAGS: contextvars.ContextVar["dict | None"] = contextvars.ContextVar(
    "repro_obs_tags", default=None
)

TRACE_VERSION = 1


def tracing_active() -> bool:
    """True when at least one span sink is installed (the fast gate)."""
    return bool(_SINKS)


def add_sink(sink: SpanSink) -> None:
    with _SINKS_LOCK:
        if sink not in _SINKS:
            _SINKS.append(sink)


def remove_sink(sink: SpanSink) -> None:
    with _SINKS_LOCK:
        if sink in _SINKS:
            _SINKS.remove(sink)


def current_tags() -> dict:
    """The ambient job-context tags (empty dict when outside a job)."""
    tags = _TAGS.get()
    return dict(tags) if tags else {}


@contextmanager
def job_tags(**tags) -> Iterator[None]:
    """Ambient tags for every span recorded inside the ``with`` body.

    Nesting merges (inner wins on collision); the previous context is
    restored on exit even across exceptions.  This is the per-job trace
    context: executors set ``model``/``problem``/``level``/… here and
    the evaluator/simulator/repair spans pick them up for free.
    """
    merged = {**(_TAGS.get() or {}), **tags}
    token = _TAGS.set(merged)
    try:
        yield
    finally:
        _TAGS.reset(token)


def record_span(
    name: str, seconds: float, t: "float | None" = None, **tags
) -> None:
    """Emit one completed span to every sink (no-op without sinks).

    ``t`` is the span's monotonic start time; when omitted it is
    back-dated from now by ``seconds`` (good enough for manually timed
    call sites like the repair loop).
    """
    if not _SINKS:
        return
    if t is None:
        t = time.monotonic() - seconds
    base = _TAGS.get()
    if base:
        merged = {**base, **tags} if tags else dict(base)
    else:
        merged = tags
    frame = {
        "type": "span",
        "name": name,
        "t": round(float(t), 6),
        "dur": round(float(seconds), 9),
        "tags": merged,
    }
    # tuple() of a list is atomic under the GIL; sinks change rarely,
    # spans are the hot path — no lock here
    for sink in tuple(_SINKS):
        sink(frame)


def record_frame(frame: dict) -> None:
    """Emit one non-span frame to every sink (no-op without sinks).

    This is how structured frames beyond spans — the simulator
    profiler's ``profile`` frames — reach ``--trace`` files without the
    writer growing a type-specific API: :class:`TraceWriter` serializes
    any dict it receives.
    """
    if not _SINKS:
        return
    for sink in tuple(_SINKS):
        sink(frame)


@contextmanager
def span(name: str, **tags) -> Iterator[None]:
    """Time the ``with`` body and record it as one span."""
    if not _SINKS:
        yield
        return
    t = time.monotonic()
    started = time.perf_counter()
    try:
        yield
    finally:
        record_span(name, time.perf_counter() - started, t=t, **tags)


class TraceWriter:
    """NDJSON trace-file sink (the ``--trace FILE`` backend).

    Thread-safe: executors complete spans from many workers at once.
    ``tags`` land once in the ``meta`` header — not on every span, the
    hot path stays two dict builds + one dumps — and readers apply them
    as per-file span-tag defaults (the ``work`` command stamps
    ``worker`` here so multi-file traces keep per-worker attribution).
    Use as a context manager to install/remove the global sink; closing
    appends a ``metrics`` frame with the registry snapshot.
    """

    def __init__(self, path: str, tags: "dict | None" = None):
        self.path = str(path)
        self.tags = dict(tags or {})
        self._lock = threading.Lock()
        self._file = open(self.path, "w", encoding="utf-8")
        self._write(
            {
                "type": "meta",
                "version": TRACE_VERSION,
                "clock": "monotonic",
                "created_unix": time.time(),
                "tags": self.tags,
            }
        )

    def _write(self, frame: dict) -> None:
        line = json.dumps(frame, separators=(",", ":"), default=str)
        with self._lock:
            self._file.write(line + "\n")

    def __call__(self, frame: dict) -> None:
        if frame.get("type") == "span":
            # hot path: span frames outnumber everything else a
            # thousandfold — serialize the fixed fields directly
            # (rounded floats repr as valid JSON) and dumps only the
            # tags dict, roughly halving the per-span cost
            line = '{"type":"span","name":%s,"t":%r,"dur":%r,"tags":%s}' % (
                json.dumps(frame["name"]),
                frame["t"],
                frame["dur"],
                json.dumps(
                    frame["tags"], separators=(",", ":"), default=str
                ),
            )
            with self._lock:
                self._file.write(line + "\n")
            return
        self._write(frame)

    def close(self) -> None:
        with self._lock:
            if self._file.closed:
                return
        self._write(
            {"type": "metrics", "t": time.monotonic(),
             "metrics": REGISTRY.snapshot()}
        )
        with self._lock:
            self._file.close()

    def __enter__(self) -> "TraceWriter":
        add_sink(self)
        return self

    def __exit__(self, *exc_info) -> None:
        remove_sink(self)
        self.close()


__all__ = [
    "TRACE_VERSION",
    "TraceWriter",
    "add_sink",
    "current_tags",
    "job_tags",
    "record_frame",
    "record_span",
    "remove_sink",
    "span",
    "tracing_active",
]
