"""Live fleet dashboard: the ``repro top`` terminal view + ``/dashboard``.

Everything here renders from two JSON documents any repro service
already serves — ``GET /metrics`` (registry snapshot, fleet telemetry,
coordinator summary) and ``GET /shard/status`` (units, leases,
per-worker throughput) — so the dashboard needs no new state, only
polling.  Three consumers share the code:

* :func:`fetch_view` + :func:`render_dashboard` — one poll cycle
  rendered as a fixed-width terminal page;
* :func:`run_top` — the ``repro top`` loop (``--once`` renders a single
  frame for CI and piping);
* :func:`dashboard_html` — a self-contained HTML page (inline JS, no
  external assets) served as ``GET /dashboard`` by both HTTP servers,
  polling the same two routes from the browser.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Callable

#: ANSI clear-screen + home, written before every repaint of the loop
CLEAR = "\x1b[2J\x1b[H"


def _get_json(url: str, timeout: float) -> dict:
    request = urllib.request.Request(url, headers={"Accept": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_view(base_url: str, timeout: float = 5.0) -> dict:
    """One poll of ``/metrics`` + ``/shard/status``.

    ``/shard/status`` legitimately fails on a plain eval service (no
    coordinator attached), so each document is fetched independently
    and failures land in ``errors`` instead of raising — the renderer
    shows whatever half is available.
    """
    base = base_url.rstrip("/")
    view: dict = {"url": base, "metrics": None, "status": None,
                  "errors": []}
    for key, path in (("metrics", "/metrics"), ("status", "/shard/status")):
        try:
            view[key] = _get_json(base + path, timeout)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            view["errors"].append(f"{path}: {exc}")
    return view


# ----------------------------------------------------------------------
# Derivations over the polled documents
# ----------------------------------------------------------------------
def stage_split(metrics: "dict | None") -> list[dict]:
    """Aggregate ``stage_seconds`` histograms into per-stage rows."""
    totals: dict[str, dict] = {}
    for row in (metrics or {}).get("histograms", ()):
        if row.get("name") != "stage_seconds":
            continue
        stage = str(row.get("labels", {}).get("stage", "?"))
        bucket = totals.setdefault(stage, {"count": 0, "seconds": 0.0})
        bucket["count"] += int(row.get("count", 0))
        bucket["seconds"] += float(row.get("sum", 0.0))
    grand = sum(bucket["seconds"] for bucket in totals.values())
    return [
        {
            "stage": stage,
            "count": bucket["count"],
            "seconds": bucket["seconds"],
            "share": (bucket["seconds"] / grand) if grand > 0 else 0.0,
        }
        for stage, bucket in sorted(
            totals.items(), key=lambda item: -item[1]["seconds"]
        )
    ]


def counter_rollup(metrics: "dict | None", name: str,
                   label: str) -> dict[str, float]:
    """Sum a counter's series by one label's value (e.g. repair verdicts)."""
    rollup: dict[str, float] = {}
    for row in (metrics or {}).get("counters", ()):
        if row.get("name") != name:
            continue
        key = str(row.get("labels", {}).get(label, "?"))
        rollup[key] = rollup.get(key, 0.0) + float(row.get("value", 0.0))
    return rollup


def _fmt_rate(numerator: float, denominator: float) -> str:
    return f"{numerator / denominator:.1%}" if denominator > 0 else "-"


def render_dashboard(view: dict, width: int = 78) -> str:
    """One terminal page from a :func:`fetch_view` result."""
    lines: list[str] = []
    rule = "-" * width
    stamp = time.strftime("%H:%M:%S")
    lines.append(f"repro top — {view.get('url', '?')} — {stamp}")
    lines.append(rule)

    metrics_doc = view.get("metrics") or {}
    registry = metrics_doc.get("metrics") or {}
    status = view.get("status")

    # -- coordinator progress + lease table -----------------------------
    if status:
        jobs_total = status.get("jobs_total", 0)
        jobs_done = status.get("jobs_done", 0)
        lines.append(
            f"sweep: {jobs_done}/{jobs_total} jobs — units "
            f"{status.get('done', 0)} done / {status.get('leased', 0)} "
            f"leased / {status.get('pending', 0)} pending — records "
            f"{status.get('records_merged', 0)} merged"
            + (
                f" (+{status['records_streaming']} streaming)"
                if status.get("records_streaming") else ""
            )
            + f" — store hits {status.get('store_hits', 0)}"
            + (
                f" — {status['leases_reclaimed']} lease(s) reclaimed"
                if status.get("leases_reclaimed") else ""
            )
        )
        leases = status.get("leases") or []
        if leases:
            lines.append("")
            lines.append(
                f"{'lease':<14}{'unit':>6}  {'worker':<22}"
                f"{'expires':>9}{'streamed':>10}"
            )
            for row in leases[:10]:
                streamed = row.get("records_streamed")
                lines.append(
                    f"{str(row.get('lease_id', ''))[:12]:<14}"
                    f"{row.get('shard_index', '?'):>6}  "
                    f"{str(row.get('worker_id', '?')):<22}"
                    f"{row.get('expires_in', 0.0):>8.1f}s"
                    f"{streamed if streamed is not None else '-':>10}"
                )
            if len(leases) > 10:
                lines.append(f"  ... {len(leases) - 10} more lease(s)")
    else:
        lines.append("sweep: no coordinator attached")

    # -- per-worker throughput (coordinator) + liveness (telemetry) -----
    fleet = metrics_doc.get("fleet") or {}
    liveness = {
        row["worker"]: row for row in fleet.get("workers", ())
    }
    workers = (status or {}).get("workers") or []
    if workers or liveness:
        lines.append("")
        lines.append(
            f"{'worker':<22}{'units':>6}{'jobs':>7}{'records':>9}"
            f"{'errors':>8}{'jobs/s':>8}  {'telemetry':<12}"
        )
        seen = set()
        for row in workers:
            worker = str(row.get("worker_id", "?"))
            seen.add(worker)
            live = liveness.get(worker)
            if live is None:
                mark = "-"
            elif live["stale"]:
                mark = f"STALE {live['age_seconds']:.0f}s"
            else:
                mark = f"up {live['age_seconds']:.0f}s ago"
            lines.append(
                f"{worker:<22}{row.get('units', 0):>6}"
                f"{row.get('jobs', 0):>7}{row.get('records', 0):>9}"
                f"{row.get('errors', 0):>8}"
                f"{row.get('jobs_per_second', 0.0):>8.2f}  {mark:<12}"
            )
        for worker, live in sorted(liveness.items()):
            if worker in seen:
                continue
            mark = (
                f"STALE {live['age_seconds']:.0f}s" if live["stale"]
                else f"up {live['age_seconds']:.0f}s ago"
            )
            lines.append(
                f"{worker:<22}{'-':>6}{'-':>7}{'-':>9}{'-':>8}{'-':>8}"
                f"  {mark:<12}"
            )

    # -- stage split ----------------------------------------------------
    split = stage_split(registry)
    if split:
        lines.append("")
        lines.append(f"{'stage':<12}{'count':>8}{'seconds':>11}{'share':>8}")
        for row in split:
            lines.append(
                f"{row['stage']:<12}{row['count']:>8}"
                f"{row['seconds']:>11.3f}{row['share']:>8.1%}"
            )

    # -- repair lift / error + rejection rates --------------------------
    repair = counter_rollup(registry, "repair_attempts", "verdict")
    cache = counter_rollup(registry, "evaluator_cache", "result")
    analysis = counter_rollup(registry, "analysis_findings_total", "code")
    tail: list[str] = []
    if repair:
        attempts = sum(repair.values())
        tail.append(
            "repair: "
            + ", ".join(
                f"{verdict}={int(count)}"
                for verdict, count in sorted(repair.items())
            )
            + f" — lift {_fmt_rate(repair.get('pass', 0.0), attempts)}"
        )
    evaluations = sum(cache.values())
    job_errors = sum(
        float(row.get("errors", 0)) for row in workers
    ) if workers else 0.0
    jobs_done_total = sum(
        float(row.get("jobs", 0)) for row in workers
    ) if workers else 0.0
    rejections = sum(analysis.values())
    if evaluations or rejections or job_errors:
        tail.append(
            f"evaluations: {int(evaluations)} "
            f"(cache hit {_fmt_rate(cache.get('hit', 0.0) + cache.get('store_hit', 0.0), evaluations)}) — "
            f"analysis findings: {int(rejections)} — "
            f"job errors: {_fmt_rate(job_errors, jobs_done_total)}"
        )
    if tail:
        lines.append("")
        lines.extend(tail)

    for error in view.get("errors", ()):
        if "shard/status" in error and status is None:
            continue  # already summarized as "no coordinator attached"
        lines.append("")
        lines.append(f"poll error: {error}")

    lines.append(rule)
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    timeout: float = 5.0,
    out: "Callable[[str], None] | None" = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """The ``repro top`` loop; returns the process exit code.

    ``--once`` (tests, CI, piping into files) renders a single frame
    without the clear-screen escape and exits 0 on a reachable service,
    1 otherwise.
    """
    emit = out if out is not None else (
        lambda text: print(text, file=sys.stdout, flush=True)
    )
    while True:
        view = fetch_view(url, timeout=timeout)
        page = render_dashboard(view)
        if once:
            emit(page)
            reachable = view["metrics"] is not None or view["status"] is not None
            return 0 if reachable else 1
        emit(CLEAR + page)
        try:
            sleep(interval)
        except KeyboardInterrupt:
            return 0


# ----------------------------------------------------------------------
# The /dashboard HTML page
# ----------------------------------------------------------------------
_DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro dashboard</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         background: #111; color: #ddd; margin: 1.5rem; }
  h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; color: #9cf; }
  table { border-collapse: collapse; margin: 0.4rem 0 1rem; }
  th, td { padding: 0.15rem 0.7rem; text-align: right;
           border-bottom: 1px solid #333; }
  th:first-child, td:first-child { text-align: left; }
  .stale { color: #f66; } .ok { color: #6f6; }
  #err { color: #f96; white-space: pre-line; }
  small { color: #888; }
</style>
</head>
<body>
<h1>repro dashboard <small id="stamp"></small></h1>
<div id="sweep"></div>
<h2>workers</h2><table id="workers"></table>
<h2>leases</h2><table id="leases"></table>
<h2>stage split</h2><table id="stages"></table>
<div id="err"></div>
<script>
"use strict";
const REFRESH_MS = 2000;
function cell(tag, text, cls) {
  const el = document.createElement(tag);
  el.textContent = text;
  if (cls) el.className = cls;
  return el;
}
function fill(id, header, rows) {
  const table = document.getElementById(id);
  table.textContent = "";
  const head = document.createElement("tr");
  header.forEach(h => head.appendChild(cell("th", h)));
  table.appendChild(head);
  rows.forEach(r => {
    const tr = document.createElement("tr");
    r.forEach(c => tr.appendChild(
      Array.isArray(c) ? cell("td", c[0], c[1]) : cell("td", c)));
    table.appendChild(tr);
  });
}
function stageSplit(metrics) {
  const totals = {};
  (metrics.histograms || []).forEach(row => {
    if (row.name !== "stage_seconds") return;
    const stage = (row.labels || {}).stage || "?";
    const t = totals[stage] || (totals[stage] = {count: 0, seconds: 0});
    t.count += row.count; t.seconds += row.sum;
  });
  const grand = Object.values(totals)
    .reduce((acc, t) => acc + t.seconds, 0);
  return Object.entries(totals)
    .sort((a, b) => b[1].seconds - a[1].seconds)
    .map(([stage, t]) => [stage, t.count, t.seconds.toFixed(3),
      grand > 0 ? (100 * t.seconds / grand).toFixed(1) + "%" : "-"]);
}
async function poll() {
  const errors = [];
  let metricsDoc = null, status = null;
  try { metricsDoc = await (await fetch("/metrics")).json(); }
  catch (e) { errors.push("/metrics: " + e); }
  try {
    const resp = await fetch("/shard/status", {method: "GET"});
    if (resp.ok) status = await resp.json();
  } catch (e) { /* no coordinator attached */ }
  document.getElementById("stamp").textContent =
    new Date().toLocaleTimeString();
  if (status) {
    document.getElementById("sweep").textContent =
      `sweep: ${status.jobs_done}/${status.jobs_total} jobs — ` +
      `units ${status.done} done / ${status.leased} leased / ` +
      `${status.pending} pending — ${status.records_merged} records` +
      ` — store hits ${status.store_hits}`;
  } else {
    document.getElementById("sweep").textContent =
      "sweep: no coordinator attached";
  }
  const fleet = (metricsDoc || {}).fleet || {};
  const liveness = {};
  (fleet.workers || []).forEach(w => { liveness[w.worker] = w; });
  const workerRows = ((status || {}).workers || []).map(w => {
    const live = liveness[w.worker_id];
    delete liveness[w.worker_id];
    const mark = !live ? ["-", ""] : live.stale
      ? [`STALE ${live.age_seconds.toFixed(0)}s`, "stale"]
      : [`up ${live.age_seconds.toFixed(0)}s ago`, "ok"];
    return [w.worker_id, w.units, w.jobs, w.records, w.errors,
            w.jobs_per_second.toFixed(2), mark];
  });
  Object.entries(liveness).forEach(([worker, live]) => {
    workerRows.push([worker, "-", "-", "-", "-", "-",
      live.stale ? [`STALE ${live.age_seconds.toFixed(0)}s`, "stale"]
                 : [`up ${live.age_seconds.toFixed(0)}s ago`, "ok"]]);
  });
  fill("workers",
       ["worker", "units", "jobs", "records", "errors", "jobs/s",
        "telemetry"],
       workerRows);
  fill("leases", ["lease", "unit", "worker", "expires", "streamed"],
       ((status || {}).leases || []).map(l =>
         [String(l.lease_id).slice(0, 12), l.shard_index, l.worker_id,
          l.expires_in.toFixed(1) + "s",
          l.records_streamed === undefined ? "-" : l.records_streamed]));
  fill("stages", ["stage", "count", "seconds", "share"],
       stageSplit((metricsDoc || {}).metrics || {}));
  document.getElementById("err").textContent = errors.join("\\n");
}
poll();
setInterval(poll, REFRESH_MS);
</script>
</body>
</html>
"""


def dashboard_html() -> str:
    """The self-contained ``GET /dashboard`` page (no external assets)."""
    return _DASHBOARD_HTML


__all__ = [
    "counter_rollup",
    "dashboard_html",
    "fetch_view",
    "render_dashboard",
    "run_top",
    "stage_split",
]
