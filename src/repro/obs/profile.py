"""Opt-in simulator hot-spot profiler.

The ROADMAP's sim-compile item needs to know *which* netlist constructs
burn the ~95% of evaluation time the stage timers attribute to
``sim``/``testbench``.  This module is the answer: a
:class:`SimProfiler` is handed to :class:`repro.verilog.sim.Simulator`
(via ``run_simulation(..., profiler=...)``) and receives one ``add``
per process activation — wall seconds, expression evaluations and
statement dispatches, keyed by *construct*: the hierarchy-flattened
instance path plus the process kind and source line
(``b1.always@9``, ``assign@3``), the same path convention
:mod:`repro.verilog.analyze` uses for findings.

Layering: the verilog package stays observability-free.  The simulator
only ever calls methods on the injected profiler object; everything
obs-flavoured — the global enable flag, the trace-sink emission, the
``profile`` NDJSON frame — lives here.  When profiling is disabled (the
default) :func:`maybe_sim_profiler` returns ``None`` and the simulator
runs its unmodified dispatch loop, so the disabled path costs nothing.

A profiler's run is published as one ``profile`` frame per problem in
the existing NDJSON trace format (:func:`record_profile`), which
``repro stats`` folds into its report and ``repro hotspots`` ranks
until a target share of sim time is attributed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from .trace import current_tags, record_frame, tracing_active

#: construct key: (hierarchical scope path, process kind, source line)
ConstructKey = tuple[str, str, int]

_ENABLED = False


def enable_profiling() -> None:
    """Turn the simulator profiler on process-wide (still needs a sink)."""
    global _ENABLED
    _ENABLED = True


def disable_profiling() -> None:
    global _ENABLED
    _ENABLED = False


def profiling_enabled() -> bool:
    return _ENABLED


@contextmanager
def profiling(enabled: bool = True) -> Iterator[None]:
    """Scoped enable/disable; restores the previous state on exit."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


class SimProfiler:
    """Per-construct accumulator for one simulation run.

    ``add`` sits on the simulator's activation path, so it stays a
    dict upsert on a plain list — no locks (a simulation run is
    single-threaded) and no dataclass per call.
    """

    __slots__ = ("constructs",)

    def __init__(self) -> None:
        # key -> [seconds, activations, evals, steps]
        self.constructs: dict[ConstructKey, list] = {}

    def add(self, key: ConstructKey, seconds: float, evals: int,
            steps: int) -> None:
        row = self.constructs.get(key)
        if row is None:
            row = self.constructs[key] = [0.0, 0, 0, 0]
        row[0] += seconds
        row[1] += 1
        row[2] += evals
        row[3] += steps

    # ------------------------------------------------------------------
    @property
    def attributed_seconds(self) -> float:
        return sum(row[0] for row in self.constructs.values())

    def rows(self) -> list[dict]:
        """JSON-ready construct rows, hottest first (ties: by path)."""
        rendered = [
            {
                "path": construct_path(key),
                "kind": key[1],
                "line": key[2],
                "seconds": round(row[0], 9),
                "activations": row[1],
                "evals": row[2],
                "steps": row[3],
            }
            for key, row in self.constructs.items()
        ]
        rendered.sort(key=lambda row: (-row["seconds"], row["path"]))
        return rendered

    def merge(self, other: "SimProfiler") -> None:
        """Fold another run's constructs into this accumulator."""
        for key, row in other.constructs.items():
            mine = self.constructs.get(key)
            if mine is None:
                self.constructs[key] = list(row)
            else:
                mine[0] += row[0]
                mine[1] += row[1]
                mine[2] += row[2]
                mine[3] += row[3]


def construct_path(key: ConstructKey) -> str:
    """Render a construct key as a hierarchical path.

    Matches the elaborator's flat-name convention: the top scope's path
    is empty, so top-level constructs render bare (``always@12``) and
    instanced ones carry the instance chain (``b1.always@9``).
    """
    path, kind, line = key
    name = f"{kind}@{line}"
    return f"{path}.{name}" if path else name


def maybe_sim_profiler() -> "SimProfiler | None":
    """A fresh profiler when profiling is on *and* a trace sink exists.

    Requiring a sink keeps ``enable_profiling()`` free when there is
    nowhere to publish frames — the evaluator passes the returned
    ``None`` straight through and the simulator's dispatch loop stays
    untouched.
    """
    if _ENABLED and tracing_active():
        return SimProfiler()
    return None


def profile_frame(
    profiler: SimProfiler,
    problem: "int | None" = None,
    sim_seconds: float = 0.0,
    engine: "str | None" = None,
) -> dict:
    """Build the ``profile`` NDJSON frame for one simulation run.

    ``engine`` names the execution engine that produced the run
    (``"interpreter"`` or ``"compiled"``).  Compiled runs attribute wall
    seconds, activations and suspension steps exactly like interpreted
    ones (the profiler times process resumes, which both engines share),
    but compiled expression closures do not tick the per-eval counter —
    so compiled frames carry ``"evals_attributed": false`` and
    downstream consumers must not compare eval counts across engines.
    Constructs that fell back to the interpreter inside a compiled run
    still tick evals; the flag is deliberately conservative.
    """
    frame = {
        "type": "profile",
        "t": round(time.monotonic(), 6),
        "sim_seconds": round(float(sim_seconds), 9),
        "tags": current_tags(),
        "constructs": profiler.rows(),
    }
    if engine is not None:
        frame["engine"] = engine
        frame["evals_attributed"] = engine != "compiled"
    if problem is not None:
        frame["problem"] = problem
    return frame


def record_profile(
    profiler: SimProfiler,
    problem: "int | None" = None,
    sim_seconds: float = 0.0,
    engine: "str | None" = None,
) -> None:
    """Publish one run's profile to the installed trace sinks."""
    if not profiler.constructs or not tracing_active():
        return
    record_frame(profile_frame(profiler, problem=problem,
                               sim_seconds=sim_seconds, engine=engine))


__all__ = [
    "SimProfiler",
    "construct_path",
    "disable_profiling",
    "enable_profiling",
    "maybe_sim_profiler",
    "profile_frame",
    "profiling",
    "profiling_enabled",
    "record_profile",
]
