"""Byte-pair encoding from scratch (paper Sec. II-A, citing Gage 1994).

A byte-level BPE tokenizer: the base vocabulary is the 256 byte values,
training greedily merges the most frequent adjacent pair, and encoding
applies the learned merges in rank order.  Encode/decode round-trips any
string losslessly (property-tested).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

# GPT-2-style pre-tokenization: split into word-ish chunks so merges never
# straddle a word boundary (keeps training tractable and merges meaningful).
_PRETOKEN_RE = re.compile(
    rb" ?[A-Za-z_][A-Za-z0-9_]*| ?[0-9]+| ?[^\sA-Za-z0-9_]+|\s+"
)


def pretokenize(data: bytes) -> list[bytes]:
    """Split a byte string into pre-token chunks (lossless)."""
    return _PRETOKEN_RE.findall(data)


@dataclass
class BPETokenizer:
    """A trained byte-level BPE tokenizer.

    Token ids 0-255 are raw bytes; ids >= 256 are learned merges.
    """

    merges: list[tuple[int, int]] = field(default_factory=list)
    _ranks: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)
    _vocab_bytes: list[bytes] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._rebuild_tables()

    def _rebuild_tables(self) -> None:
        self._ranks = {pair: i for i, pair in enumerate(self.merges)}
        self._vocab_bytes = [bytes([i]) for i in range(256)]
        for left, right in self.merges:
            self._vocab_bytes.append(
                self._vocab_bytes[left] + self._vocab_bytes[right]
            )

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return 256 + len(self.merges)

    def token_bytes(self, token_id: int) -> bytes:
        """Raw bytes a token id decodes to."""
        return self._vocab_bytes[token_id]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @classmethod
    def train(cls, text: str, vocab_size: int = 1_024) -> "BPETokenizer":
        """Learn merges from ``text`` until ``vocab_size`` is reached."""
        if vocab_size < 256:
            raise ValueError("vocab_size must be >= 256")
        word_freqs: dict[bytes, int] = {}
        for chunk in pretokenize(text.encode("utf-8")):
            word_freqs[chunk] = word_freqs.get(chunk, 0) + 1
        # each distinct pre-token becomes a mutable symbol sequence
        words: list[tuple[list[int], int]] = [
            (list(chunk), freq) for chunk, freq in word_freqs.items()
        ]
        merges: list[tuple[int, int]] = []
        next_id = 256
        while next_id < vocab_size:
            pair_counts: dict[tuple[int, int], int] = {}
            for symbols, freq in words:
                for i in range(len(symbols) - 1):
                    pair = (symbols[i], symbols[i + 1])
                    pair_counts[pair] = pair_counts.get(pair, 0) + freq
            if not pair_counts:
                break
            best_pair, best_count = max(
                pair_counts.items(), key=lambda kv: (kv[1], -kv[0][0], -kv[0][1])
            )
            if best_count < 2:
                break  # nothing left worth merging
            merges.append(best_pair)
            for symbols, _ in words:
                i = 0
                while i < len(symbols) - 1:
                    if (symbols[i], symbols[i + 1]) == best_pair:
                        symbols[i : i + 2] = [next_id]
                    else:
                        i += 1
            next_id += 1
        return cls(merges=merges)

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def _encode_chunk(self, chunk: bytes) -> list[int]:
        symbols = list(chunk)
        if len(symbols) < 2:
            return symbols
        while True:
            best_rank = None
            best_index = -1
            for i in range(len(symbols) - 1):
                rank = self._ranks.get((symbols[i], symbols[i + 1]))
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank = rank
                    best_index = i
            if best_rank is None:
                return symbols
            symbols[best_index : best_index + 2] = [256 + best_rank]

    def encode(self, text: str) -> list[int]:
        """Token ids for ``text``."""
        ids: list[int] = []
        for chunk in pretokenize(text.encode("utf-8")):
            ids.extend(self._encode_chunk(chunk))
        return ids

    def decode(self, ids: list[int]) -> str:
        """Text for token ids (inverse of :meth:`encode`)."""
        data = b"".join(self._vocab_bytes[i] for i in ids)
        return data.decode("utf-8", errors="replace")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"merges": self.merges})

    @classmethod
    def from_json(cls, payload: str) -> "BPETokenizer":
        data = json.loads(payload)
        merges = [tuple(pair) for pair in data["merges"]]
        return cls(merges=merges)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "BPETokenizer":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())
