"""Byte-pair-encoding tokenizer trained on the Verilog corpus."""

from .bpe import BPETokenizer, pretokenize

__all__ = ["BPETokenizer", "pretokenize"]
