"""Offline-safe HTTP/chat backend adapter.

Speaks the request/response shape of local chat servers (Ollama-style
``{"message": {"content": ...}}`` and OpenAI-style
``{"choices": [{"message": {"content": ...}}]}``) but never opens a
socket itself: the transport is an injected callable
``transport(url, payload) -> response dict``.  Production deployments
plug in a real client; tests plug in a recorder.  Chat models wrap code
in markdown fences and chatter around it, so responses are cleaned
(fence extraction) before they reach the evaluator.
"""

from __future__ import annotations

import re
import time
from typing import Callable, Sequence

from ..models.base import Completion, GenerationConfig
from .base import Backend, BackendError, ModelCapabilities

Transport = Callable[[str, dict], dict]

SYSTEM_PROMPT = (
    "You are an expert hardware engineer writing synthesizable "
    "Verilog-2001. Continue the given module skeleton. Output only "
    "Verilog code, ending with `endmodule`; do not use SystemVerilog."
)

#: A complete fenced block: opening fence with an optional language tag
#: (```verilog, ```systemverilog, ```v, bare ```), body, closing fence.
_FENCE_BLOCK_RE = re.compile(
    r"```[ \t]*[A-Za-z0-9_+.-]*[ \t]*\r?\n(.*?)(?:\r?\n)?[ \t]*```",
    re.DOTALL,
)
#: A complete module definition inside one block.
_MODULE_SPAN_RE = re.compile(r"\bmodule\b.*?\bendmodule\b", re.DOTALL)
#: A stray fence-marker line: a ``` fence (tagged or not) or a line of
#: bare backticks.  Deliberately does NOT match Verilog compiler
#: directives (`timescale, `ifdef, `endif...): a single backtick
#: followed by a word is real code, not markdown.
_STRAY_FENCE_LINE_RE = re.compile(
    r"^[ \t]*(```+[ \t]*[A-Za-z0-9_+.-]*|`+)[ \t]*$"
)


def clean_chat_response(text: str) -> str:
    """Extract code from a chatty markdown reply.

    Handles the shapes multi-turn chat models actually produce:

    * fenced blocks with any language tag (```verilog, ```systemverilog,
      ```v, untagged);
    * several code blocks in one reply — the *last* block containing a
      complete ``module...endmodule`` wins (models often restate the
      fixed version after prose; earlier blocks quote the broken one),
      else the last block;
    * stray fence markers and wrapping backticks with no matching pair —
      stripped line-wise without touching backtick compiler directives.
    """
    blocks = [
        match.group(1).strip() for match in _FENCE_BLOCK_RE.finditer(text)
    ]
    blocks = [block for block in blocks if block]
    if blocks:
        complete = [b for b in blocks if _MODULE_SPAN_RE.search(b)]
        return complete[-1] if complete else blocks[-1]
    # no complete fence pair: drop stray fence-marker lines, then peel
    # symmetric wrapping backticks (`code`) off the remainder
    lines = [
        line
        for line in text.splitlines()
        if not _STRAY_FENCE_LINE_RE.match(line)
    ]
    cleaned = "\n".join(lines).strip()
    while (
        len(cleaned) > 1
        and cleaned.startswith("`")
        and cleaned.endswith("`")
    ):
        cleaned = cleaned[1:-1].strip()
    return cleaned


def extract_chat_text(response: dict) -> str:
    """Pull the assistant text out of an Ollama- or OpenAI-shaped reply."""
    if "message" in response:  # ollama /api/chat
        return str(response["message"].get("content", ""))
    choices = response.get("choices")
    if choices:  # openai /v1/chat/completions
        first = choices[0]
        if "message" in first:
            return str(first["message"].get("content", ""))
        return str(first.get("text", ""))
    raise BackendError(f"unrecognized chat response shape: {sorted(response)}")


class HTTPChatBackend(Backend):
    """Chat-endpoint backend with a pluggable transport."""

    name = "http"

    def __init__(
        self,
        model_names: Sequence[str] = ("chat-model",),
        transport: Transport | None = None,
        url: str = "http://localhost:11434/api/chat",
        system_prompt: str = SYSTEM_PROMPT,
        clean: bool = True,
        max_tokens: int = 300,
    ):
        self._model_names = list(model_names)
        self._transport = transport
        self.url = url
        self.system_prompt = system_prompt
        self.clean = clean
        self._max_tokens = max_tokens

    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        return list(self._model_names)

    def capabilities(self, model: str) -> ModelCapabilities:
        return ModelCapabilities(max_tokens=self._max_tokens)

    def chat_payload(
        self,
        model: str,
        messages: Sequence[dict],
        config: GenerationConfig,
        index: int,
    ) -> dict:
        """One multi-turn chat request (system prompt prepended);
        ``index`` seeds distinct samples per conversation."""
        return {
            "model": model,
            "messages": [
                {"role": "system", "content": self.system_prompt},
                *({"role": m.get("role", "user"),
                   "content": str(m.get("content", ""))} for m in messages),
            ],
            "options": {
                "temperature": config.temperature,
                "top_p": config.top_p,
                "num_predict": min(config.max_tokens, self._max_tokens),
                "seed": index,
            },
            "stream": False,
        }

    def payload(
        self, model: str, prompt: str, config: GenerationConfig, index: int
    ) -> dict:
        """One single-turn chat request; ``index`` seeds distinct samples."""
        return self.chat_payload(
            model, [{"role": "user", "content": prompt}], config, index
        )

    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        return self.generate_chat(
            model, [{"role": "user", "content": prompt}], config
        )

    def generate_chat(
        self,
        model: str,
        messages: Sequence[dict],
        config: GenerationConfig,
    ) -> list[Completion]:
        """Serve a multi-turn conversation verbatim (no flattening)."""
        if self._transport is None:
            raise BackendError(
                "HTTPChatBackend has no transport configured; it is "
                "offline-safe by design — inject transport=(url, payload) "
                "-> response to connect it to a real endpoint"
            )
        completions = []
        for index in range(config.n):
            started = time.perf_counter()
            response = self._transport(
                self.url, self.chat_payload(model, messages, config, index)
            )
            elapsed = time.perf_counter() - started
            text = extract_chat_text(response)
            if self.clean:
                text = clean_chat_response(text)
            completions.append(
                Completion(
                    text=text,
                    inference_seconds=elapsed,
                    tokens=max(1, len(text) // 4),
                )
            )
        return completions
