"""Offline-safe HTTP/chat backend adapter.

Speaks the request/response shape of local chat servers (Ollama-style
``{"message": {"content": ...}}`` and OpenAI-style
``{"choices": [{"message": {"content": ...}}]}``) but never opens a
socket itself: the transport is an injected callable
``transport(url, payload) -> response dict``.  Production deployments
plug in a real client; tests plug in a recorder.  Chat models wrap code
in markdown fences and chatter around it, so responses are cleaned
(fence extraction) before they reach the evaluator.
"""

from __future__ import annotations

import re
import time
from typing import Callable, Sequence

from ..models.base import Completion, GenerationConfig
from .base import Backend, BackendError, ModelCapabilities

Transport = Callable[[str, dict], dict]

SYSTEM_PROMPT = (
    "You are an expert hardware engineer writing synthesizable "
    "Verilog-2001. Continue the given module skeleton. Output only "
    "Verilog code, ending with `endmodule`; do not use SystemVerilog."
)

_FENCE_RES = (
    re.compile(r"```(?:[Vv]erilog|v|systemverilog)\s*\n(.*?)\n\s*```", re.DOTALL),
    re.compile(r"```\s*\n(.*?)\n\s*```", re.DOTALL),
)


def clean_chat_response(text: str) -> str:
    """Extract code from markdown fences; fall back to the bare text."""
    for fence in _FENCE_RES:
        match = fence.search(text)
        if match:
            return match.group(1).strip()
    return text.strip()


def extract_chat_text(response: dict) -> str:
    """Pull the assistant text out of an Ollama- or OpenAI-shaped reply."""
    if "message" in response:  # ollama /api/chat
        return str(response["message"].get("content", ""))
    choices = response.get("choices")
    if choices:  # openai /v1/chat/completions
        first = choices[0]
        if "message" in first:
            return str(first["message"].get("content", ""))
        return str(first.get("text", ""))
    raise BackendError(f"unrecognized chat response shape: {sorted(response)}")


class HTTPChatBackend(Backend):
    """Chat-endpoint backend with a pluggable transport."""

    name = "http"

    def __init__(
        self,
        model_names: Sequence[str] = ("chat-model",),
        transport: Transport | None = None,
        url: str = "http://localhost:11434/api/chat",
        system_prompt: str = SYSTEM_PROMPT,
        clean: bool = True,
        max_tokens: int = 300,
    ):
        self._model_names = list(model_names)
        self._transport = transport
        self.url = url
        self.system_prompt = system_prompt
        self.clean = clean
        self._max_tokens = max_tokens

    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        return list(self._model_names)

    def capabilities(self, model: str) -> ModelCapabilities:
        return ModelCapabilities(max_tokens=self._max_tokens)

    def payload(
        self, model: str, prompt: str, config: GenerationConfig, index: int
    ) -> dict:
        """One chat request; ``index`` seeds distinct samples per prompt."""
        return {
            "model": model,
            "messages": [
                {"role": "system", "content": self.system_prompt},
                {"role": "user", "content": prompt},
            ],
            "options": {
                "temperature": config.temperature,
                "top_p": config.top_p,
                "num_predict": min(config.max_tokens, self._max_tokens),
                "seed": index,
            },
            "stream": False,
        }

    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        if self._transport is None:
            raise BackendError(
                "HTTPChatBackend has no transport configured; it is "
                "offline-safe by design — inject transport=(url, payload) "
                "-> response to connect it to a real endpoint"
            )
        completions = []
        for index in range(config.n):
            started = time.perf_counter()
            response = self._transport(self.url, self.payload(model, prompt, config, index))
            elapsed = time.perf_counter() - started
            text = extract_chat_text(response)
            if self.clean:
                text = clean_chat_response(text)
            completions.append(
                Completion(
                    text=text,
                    inference_seconds=elapsed,
                    tokens=max(1, len(text) // 4),
                )
            )
        return completions
