"""Local-zoo backend: serves the calibrated simulated LLMs in-process.

Wraps any collection of :class:`~repro.models.base.LanguageModel`s behind
the :class:`~repro.backends.base.Backend` interface.  With no explicit
model list it serves the paper's eleven Table-I variants, so
``create_backend("zoo")`` is a drop-in stand-in for the legacy sweep.
"""

from __future__ import annotations

from typing import Sequence

from ..models.base import Completion, GenerationConfig, LanguageModel
from ..models.zoo import paper_model_variants
from .base import Backend, BackendError, ModelCapabilities


class LocalZooBackend(Backend):
    """Serve in-process :class:`LanguageModel` instances by name."""

    name = "zoo"

    def __init__(
        self,
        models: Sequence[LanguageModel] | None = None,
        seed: int = 0,
    ):
        if models is None:
            models = paper_model_variants(seed)
        self._models: dict[str, LanguageModel] = {m.name: m for m in models}

    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        return list(self._models)

    def model(self, name: str) -> LanguageModel:
        """The underlying :class:`LanguageModel` (for inspection)."""
        try:
            return self._models[name]
        except KeyError:
            raise BackendError(
                f"backend {self.name!r} does not serve {name!r}; "
                f"serves: {sorted(self._models)}"
            ) from None

    def add(self, model: LanguageModel) -> None:
        """Register one more model with the backend."""
        self._models[model.name] = model

    # ------------------------------------------------------------------
    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        return self.model(model).generate(prompt, config)

    def generate_batch(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        """Amortize the name lookup (and its error path) over the batch."""
        instance = self.model(model)
        return [
            instance.generate(prompt, config) for prompt, config in requests
        ]

    def capabilities(self, model: str) -> ModelCapabilities:
        spec = getattr(self.model(model), "spec", None)
        if spec is None:
            return ModelCapabilities()
        return ModelCapabilities(
            supports_n25=spec.supports_n25, max_tokens=spec.max_tokens
        )

    def identity(self, model: str) -> tuple[str, bool]:
        instance = self.model(model)
        spec = getattr(instance, "spec", None)
        fine_tuned = bool(getattr(instance, "fine_tuned", False))
        if spec is not None:
            return spec.name, fine_tuned
        return instance.name, fine_tuned
