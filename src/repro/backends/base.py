"""Backend protocol and registry for the generation service.

A :class:`Backend` is anything that can turn (model name, prompt,
:class:`~repro.models.base.GenerationConfig`) into completions.  The
sweep planner interrogates :meth:`Backend.capabilities` up front so that
unsupported configurations become explicit skip records instead of
runtime exceptions, and the executor only ever talks to this interface —
swapping the simulated zoo for an HTTP endpoint (or anything else) is a
registry entry, not a harness rewrite.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

from ..models.base import Completion, GenerationConfig


class BackendError(RuntimeError):
    """A backend could not serve a request (unknown model, no transport...)."""


@dataclass(frozen=True)
class ModelCapabilities:
    """What one served model supports; drives sweep planning."""

    supports_n25: bool = True
    max_tokens: int = 300


def variant_identity(model: str) -> tuple[str, bool]:
    """(base model name, fine_tuned) from the zoo's variant suffixes.

    Strips a trailing ``-pt``/``-ft``/``-ft-books`` flavour suffix; the
    default :meth:`Backend.identity` and the async backend layer both
    follow this naming scheme.
    """
    for suffix, fine_tuned in (("-ft-books", True), ("-ft", True), ("-pt", False)):
        if model.endswith(suffix):
            return model[: -len(suffix)], fine_tuned
    return model, False


class Backend(abc.ABC):
    """Anything that can complete prompts for a set of named models."""

    name: str = "backend"

    @abc.abstractmethod
    def models(self) -> list[str]:
        """Names of the model variants this backend serves."""

    @abc.abstractmethod
    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        """Return ``config.n`` completions of ``prompt`` from ``model``."""

    def generate_batch(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        """Serve many (prompt, config) requests for one model.

        The default just loops :meth:`generate`; backends that can
        amortize per-request overhead (model lookup, connection setup,
        prompt preprocessing) override this.  Executors use it when
        batching is enabled to cut per-job dispatch cost.
        """
        return [
            self.generate(model, prompt, config)
            for prompt, config in requests
        ]

    def generate_chat(
        self,
        model: str,
        messages: Sequence[dict],
        config: GenerationConfig,
    ) -> list[Completion]:
        """Serve a multi-turn chat request (the agentic repair surface).

        ``messages`` are ``{"role": ..., "content": ...}`` dicts in
        conversation order.  The default flattens the non-system turns
        into one prompt and delegates to :meth:`generate` — correct for
        completion-style backends (the zoo, stubs); chat-native
        backends (:class:`~repro.backends.http.HTTPChatBackend`)
        override it to ship the turns verbatim.
        """
        prompt = "\n".join(
            str(message.get("content", ""))
            for message in messages
            if message.get("role", "user") != "system"
        )
        return self.generate(model, prompt, config)

    def capabilities(self, model: str) -> ModelCapabilities:
        """Capability claims for ``model``; defaults are permissive."""
        return ModelCapabilities()

    def identity(self, model: str) -> tuple[str, bool]:
        """(base model name, fine_tuned) for record bookkeeping.

        The default strips a trailing ``-pt``/``-ft``/``-ft-books``
        flavour suffix, mirroring the zoo's naming scheme.
        """
        return variant_identity(model)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register ``factory`` under ``name`` (last registration wins)."""
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def create_backend(name: str, **kwargs) -> Backend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(**kwargs)


def resolve_backend(backend: "Backend | str | None") -> Backend:
    """Coerce a backend argument: instance passes through, a string goes
    through the registry, ``None`` means the default local zoo."""
    if backend is None:
        return create_backend("zoo")
    if isinstance(backend, str):
        return create_backend(backend)
    return backend
