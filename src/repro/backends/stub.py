"""Deterministic stub backend for tests and offline smoke runs.

Returns scripted completions (round-robin over ``completions``) and keeps
a log of every query it served.  With ``canonical=True`` it answers
benchmark prompts with the problem's reference solution instead, which
makes it a handy all-pass smoke source for the CLI and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.base import Completion, GenerationConfig, RecordedQuery
from .base import Backend, BackendError, ModelCapabilities

DEFAULT_STUB_TEXT = "endmodule"  # empty body: compiles everywhere, passes nowhere


@dataclass
class StubBackend(Backend):
    """Scripted, fully deterministic backend."""

    completions: tuple[str, ...] = (DEFAULT_STUB_TEXT,)
    model_names: tuple[str, ...] = ("stub",)
    canonical: bool = False
    supports_n25: bool = True
    max_tokens: int = 300
    inference_seconds: float = 0.0
    queries: list[RecordedQuery] = field(default_factory=list)

    name = "stub"

    def models(self) -> list[str]:
        return list(self.model_names)

    def capabilities(self, model: str) -> ModelCapabilities:
        return ModelCapabilities(
            supports_n25=self.supports_n25, max_tokens=self.max_tokens
        )

    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        if model not in self.model_names:
            raise BackendError(
                f"stub backend serves {list(self.model_names)}, not {model!r}"
            )
        texts = self.completions
        if self.canonical:
            from ..models.zoo import match_prompt_to_problem

            matched = match_prompt_to_problem(prompt)
            if matched is not None:
                texts = (matched[0].canonical_body,)
        out = [
            Completion(
                text=texts[index % len(texts)],
                inference_seconds=self.inference_seconds,
                tokens=max(1, len(texts[index % len(texts)]) // 4),
            )
            for index in range(config.n)
        ]
        self.queries.append(
            RecordedQuery(prompt=prompt, config=config, completions=out)
        )
        return out
