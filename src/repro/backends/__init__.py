"""Pluggable generation backends for the job-based sweep service.

Built-in registrations:

* ``"zoo"`` — :class:`LocalZooBackend`, the calibrated in-process zoo
  (paper Table I variants by default);
* ``"stub"`` — :class:`StubBackend`, scripted deterministic completions
  for tests and smoke runs;
* ``"stub-canonical"`` — stub answering benchmark prompts with the
  reference solutions (all-pass smoke source);
* ``"zoo-repair"`` — the zoo variants with the repairable failure mode
  enabled (``repair_rate=0.5`` by default): error-conditioned re-samples
  fix half of their own failures, the offline workload for the agentic
  repair loop (:mod:`repro.agentic`);
* ``"http"`` — :class:`HTTPChatBackend`, an offline-safe chat-endpoint
  adapter with an injectable transport;
* ``"service"`` — :class:`~repro.service.client.ServiceBackend`, the
  client of the distributed eval service (``url=...`` points it at a
  server; the import is lazy to keep the package layering acyclic).
"""

from .base import (
    Backend,
    BackendError,
    ModelCapabilities,
    available_backends,
    create_backend,
    register_backend,
    resolve_backend,
)
from .http import (
    HTTPChatBackend,
    SYSTEM_PROMPT,
    clean_chat_response,
    extract_chat_text,
)
from .local import LocalZooBackend
from .stub import DEFAULT_STUB_TEXT, StubBackend

def _service_backend(**kwargs):
    from ..service.client import ServiceBackend

    return ServiceBackend(**kwargs)


def _zoo_repair_backend(repair_rate: float = 0.5, seed: int = 0):
    from ..models.zoo import repairable_model_variants

    backend = LocalZooBackend(
        repairable_model_variants(repair_rate=repair_rate, seed=seed)
    )
    backend.name = "zoo-repair"
    return backend


register_backend("zoo", LocalZooBackend)
register_backend("zoo-repair", _zoo_repair_backend)
register_backend("stub", StubBackend)
register_backend(
    "stub-canonical", lambda **kw: StubBackend(canonical=True, **kw)
)
register_backend("http", HTTPChatBackend)
register_backend("service", _service_backend)

__all__ = [
    "Backend",
    "BackendError",
    "DEFAULT_STUB_TEXT",
    "HTTPChatBackend",
    "LocalZooBackend",
    "ModelCapabilities",
    "StubBackend",
    "SYSTEM_PROMPT",
    "available_backends",
    "clean_chat_response",
    "create_backend",
    "extract_chat_text",
    "register_backend",
    "resolve_backend",
]
