"""Fine-tuning harness (paper Sec. III-C).

Two paths, matching the substitution documented in DESIGN.md:

* *real* fine-tuning — train the CPU-scale substrates (n-gram LM, tiny
  transformer) on a built Verilog corpus; returns the trained model plus
  a :class:`FineTuneReport` with losses/perplexities;
* *zoo* fine-tuning — flip a Table-I model from its PT calibration to its
  FT calibration, optionally with the GitHub+books corpus (the paper's
  ablation), standing in for the multi-GPU DeepSpeed runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..corpus import CorpusConfig, TrainingCorpus, build_corpus
from ..tokenizer import BPETokenizer
from .base import MODEL_SPECS
from .ngram import NGramModel
from .transformer import TransformerConfig, TransformerLM
from .zoo import SimulatedLLM, make_model


@dataclass
class FineTuneReport:
    """What a fine-tuning run produced."""

    model_name: str
    corpus_files: int
    corpus_bytes: int
    wall_seconds: float
    losses: list[float] = field(default_factory=list)
    perplexity_before: float | None = None
    perplexity_after: float | None = None


def train_tokenizer(
    corpus: TrainingCorpus, vocab_size: int = 768
) -> BPETokenizer:
    """Train the shared BPE tokenizer on a corpus."""
    return BPETokenizer.train(corpus.text, vocab_size=vocab_size)


def finetune_ngram(
    corpus: TrainingCorpus,
    tokenizer: BPETokenizer | None = None,
    order: int = 4,
    holdout: str | None = None,
) -> tuple[NGramModel, FineTuneReport]:
    """Train the n-gram substrate on a corpus."""
    start = time.perf_counter()
    tokenizer = tokenizer or train_tokenizer(corpus)
    model = NGramModel(tokenizer=tokenizer, order=order, name="ngram-verilog")
    before = model.perplexity(holdout) if holdout else None
    model.fit(corpus.text)
    after = model.perplexity(holdout) if holdout else None
    report = FineTuneReport(
        model_name=model.name,
        corpus_files=len(corpus.corpus),
        corpus_bytes=corpus.corpus.total_bytes,
        wall_seconds=time.perf_counter() - start,
        perplexity_before=before,
        perplexity_after=after,
    )
    return model, report


def finetune_transformer(
    corpus: TrainingCorpus,
    tokenizer: BPETokenizer | None = None,
    steps: int = 100,
    lr: float = 1e-3,
    config: TransformerConfig | None = None,
    seed: int = 0,
) -> tuple[TransformerLM, FineTuneReport]:
    """Gradient-train the tiny transformer substrate on a corpus."""
    start = time.perf_counter()
    tokenizer = tokenizer or train_tokenizer(corpus)
    config = config or TransformerConfig(
        vocab_size=tokenizer.vocab_size, d_model=64, n_heads=4, n_layers=2
    )
    model = TransformerLM(
        tokenizer, config, seed=seed, name="transformer-verilog"
    )
    losses = model.fit(corpus.text, steps=steps, lr=lr)
    report = FineTuneReport(
        model_name=model.name,
        corpus_files=len(corpus.corpus),
        corpus_bytes=corpus.corpus.total_bytes,
        wall_seconds=time.perf_counter() - start,
        losses=losses,
    )
    return model, report


def finetune_zoo_model(
    name: str,
    corpus_config: CorpusConfig | None = None,
    seed: int = 0,
) -> tuple[SimulatedLLM, FineTuneReport]:
    """"Fine-tune" a Table-I model: build the corpus, flip PT -> FT.

    The returned model carries the corpus flavour (GitHub only vs
    GitHub+books) so the ablation benchmark can compare both.
    """
    if name not in MODEL_SPECS:
        raise KeyError(f"unknown model {name!r}")
    start = time.perf_counter()
    corpus_config = corpus_config or CorpusConfig()
    corpus = build_corpus(corpus_config)
    model = make_model(
        name,
        fine_tuned=True,
        textbook_corpus=corpus_config.include_textbooks,
        seed=seed,
    )
    report = FineTuneReport(
        model_name=model.name,
        corpus_files=len(corpus.corpus),
        corpus_bytes=corpus.corpus.total_bytes,
        wall_seconds=time.perf_counter() - start,
    )
    return model, report
