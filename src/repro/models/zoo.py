"""Calibrated simulated LLMs for the six models of the paper (Table I).

A :class:`SimulatedLLM` emits *genuine Verilog text* for each query:

* with probability ``p_functional`` — the problem's canonical solution
  (under one of a small set of cosmetic presentations);
* else with probability reaching ``p_compile`` — a wrong-but-compiling
  variant (the paper's Fig. 2c/3c/4c class of failures);
* otherwise — a syntax-broken completion from the mutation engine.

The probabilities come from :mod:`repro.models.calibration` (the paper's
Tables III/IV plus the qualitative Sec. V/VI behaviours), so running the
*real* compile + test-bench pipeline over these completions reproduces the
paper's tables.  Everything is seeded and deterministic.

Prompts are matched to problems by the ``module <name>(`` header; prompts
for unknown modules get corpus-flavoured low-quality completions, so the
zoo still behaves sensibly off the benchmark.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from ..problems import ALL_PROBLEMS, Problem, PromptLevel, problems_by_difficulty
from .base import (
    Completion,
    GenerationConfig,
    LanguageModel,
    MODEL_SPECS,
    ModelSpec,
    REPAIR_FEEDBACK_MARKER,
    stable_hash,
)
from .calibration import resolve_rates
from .mutations import break_syntax, broken_completion, cosmetic_variant

_MODULE_HEADER_RE = re.compile(r"\bmodule\s+([A-Za-z_][\w$]*)")

_PROBLEM_BY_MODULE = {p.module_name: p for p in ALL_PROBLEMS}


def match_prompt_to_problem(prompt: str) -> tuple[Problem, PromptLevel] | None:
    """Identify the benchmark problem (and detail level) of a prompt."""
    from ..corpus.filters import strip_comments

    header = _MODULE_HEADER_RE.search(strip_comments(prompt))
    if header is None:
        return None
    problem = _PROBLEM_BY_MODULE.get(header.group(1))
    if problem is None:
        return None
    # pick the most detailed level whose prompt text prefixes the query
    best_level = PromptLevel.LOW
    best_len = -1
    stripped = prompt.strip()
    for level in PromptLevel:
        text = problem.prompts[level].strip()
        if stripped.startswith(text) and len(text) > best_len:
            best_len = len(text)
            best_level = level
    return problem, best_level


@dataclass
class SimulatedLLM(LanguageModel):
    """One calibrated model of the zoo (PT or FT flavour).

    ``repair_rate`` enables the "repairable" failure mode: when a prompt
    carries the :data:`~repro.models.base.REPAIR_FEEDBACK_MARKER` (the
    agentic loop's error-conditioned re-query), the model fixes its own
    failure — emits the canonical solution — with this probability
    before falling back to its normal calibrated sampling.  0.0 (the
    default) means re-queries behave exactly like fresh queries.
    """

    spec: ModelSpec
    fine_tuned: bool = False
    textbook_corpus: bool = False  # FT corpus ablation: GitHub+books
    seed: int = 0
    repair_rate: float = 0.0
    name: str = field(default="", init=False)

    def __post_init__(self) -> None:
        suffix = "ft" if self.fine_tuned else "pt"
        if self.fine_tuned and self.textbook_corpus:
            suffix = "ft-books"
        self.name = f"{self.spec.name}-{suffix}"
        if self.fine_tuned and not self.spec.fine_tunable:
            raise ValueError(f"{self.spec.name} cannot be fine-tuned")
        if not 0.0 <= self.repair_rate <= 1.0:
            raise ValueError("repair_rate must be in [0, 1]")

    # ------------------------------------------------------------------
    def generate(self, prompt: str, config: GenerationConfig) -> list[Completion]:
        if config.n == 25 and not self.spec.supports_n25:
            raise ValueError(
                f"{self.spec.name} does not support n=25 (paper Sec. IV-B)"
            )
        matched = match_prompt_to_problem(prompt)
        completions = []
        # the RNG stream ignores the corpus flavour ("-books") so the
        # Sec. VI ablation compares with common random numbers: the only
        # difference between the two FT variants is the calibration bonus
        seed_name = f"{self.spec.name}-{'ft' if self.fine_tuned else 'pt'}"
        for index in range(config.n):
            rng = random.Random(
                f"{seed_name}|{stable_hash(prompt)}|"
                f"{int(config.temperature * 1000)}|{config.n}|{index}|{self.seed}"
            )
            if matched is None:
                completions.append(self._freeform_completion(rng, config))
            else:
                completions.append(
                    self._benchmark_completion(
                        matched[0], matched[1], rng, config,
                        hinted="// hint:" in prompt,
                        repairing=REPAIR_FEEDBACK_MARKER in prompt,
                    )
                )
        return completions

    # ------------------------------------------------------------------
    def _benchmark_completion(
        self,
        problem: Problem,
        level: PromptLevel,
        rng: random.Random,
        config: GenerationConfig,
        hinted: bool = False,
        repairing: bool = False,
    ) -> Completion:
        siblings = [
            p.number for p in problems_by_difficulty(problem.difficulty)
        ]
        rates = resolve_rates(
            model=self.spec.name,
            fine_tuned=self.fine_tuned,
            difficulty=problem.difficulty,
            level=level,
            problem_number=problem.number,
            difficulty_problem_numbers=siblings,
            temperature=config.temperature,
            n=config.n,
            textbook_corpus=self.textbook_corpus,
            hinted=hinted,
        )
        if (
            repairing
            and self.repair_rate > 0
            and rng.random() < self.repair_rate
        ):
            # error-conditioned re-sample: the feedback worked, the
            # model fixes its own failure (calibrated by repair_rate)
            body = cosmetic_variant(problem.canonical_body, rng)
        else:
            roll = rng.random()
            if roll < rates.p_functional:
                body = cosmetic_variant(problem.canonical_body, rng)
            elif roll < rates.p_compile:
                body = self._wrong_body(problem, rng)
            else:
                body = broken_completion(
                    self._raw_wrong_body(problem, rng), rng
                )
        seconds = rates.inference_seconds * rng.uniform(0.9, 1.1)
        max_tokens = min(config.max_tokens, self.spec.max_tokens)
        return Completion(
            text=body,
            inference_seconds=seconds,
            tokens=min(max_tokens, max(1, len(body) // 4)),
        )

    def _wrong_body(self, problem: Problem, rng: random.Random) -> str:
        return cosmetic_variant(self._raw_wrong_body(problem, rng), rng)

    @staticmethod
    def _raw_wrong_body(problem: Problem, rng: random.Random) -> str:
        if problem.wrong_variants:
            return rng.choice(problem.wrong_variants).body
        return problem.canonical_body

    def _freeform_completion(
        self, rng: random.Random, config: GenerationConfig
    ) -> Completion:
        """Plausible continuation for prompts outside the benchmark."""
        from ..corpus.generators import random_module

        body = random_module(rng)
        if not self.fine_tuned and rng.random() < 0.7:
            body = break_syntax(body, rng)
        from .calibration import INFERENCE_SECONDS

        seconds = INFERENCE_SECONDS[(self.spec.name, self.fine_tuned)]
        return Completion(
            text=body,
            inference_seconds=seconds * rng.uniform(0.9, 1.1),
            tokens=max(1, len(body) // 4),
        )


def make_model(
    name: str,
    fine_tuned: bool = False,
    textbook_corpus: bool = False,
    seed: int = 0,
    repair_rate: float = 0.0,
) -> SimulatedLLM:
    """Build one zoo model by Table-I name (e.g. ``"codegen-16b"``)."""
    if name not in MODEL_SPECS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_SPECS)}")
    return SimulatedLLM(
        spec=MODEL_SPECS[name],
        fine_tuned=fine_tuned,
        textbook_corpus=textbook_corpus,
        seed=seed,
        repair_rate=repair_rate,
    )


def paper_model_variants(seed: int = 0) -> list[SimulatedLLM]:
    """The eleven (model, PT/FT) variants evaluated in Tables III/IV."""
    variants: list[SimulatedLLM] = []
    for spec in MODEL_SPECS.values():
        variants.append(SimulatedLLM(spec=spec, seed=seed))
        if spec.fine_tunable:
            variants.append(SimulatedLLM(spec=spec, fine_tuned=True, seed=seed))
    return variants


def repairable_model_variants(
    repair_rate: float = 0.5, seed: int = 0
) -> list[SimulatedLLM]:
    """The paper variants with the repairable failure mode enabled.

    Same model names and the same RNG streams as
    :func:`paper_model_variants` on fresh prompts — only the response to
    error-conditioned re-queries differs — so repair sweeps at budget 0
    reproduce the plain zoo byte for byte.
    """
    variants = paper_model_variants(seed=seed)
    for variant in variants:
        variant.repair_rate = repair_rate
    return variants
