"""Temperature and nucleus (top-p) sampling over next-token distributions."""

from __future__ import annotations

import numpy as np


def apply_temperature(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Scale logits by 1/temperature (temperature > 0)."""
    if temperature <= 0:
        raise ValueError("temperature must be > 0")
    return logits / temperature


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits)
    exp = np.exp(shifted)
    return exp / exp.sum()


def nucleus_filter(probs: np.ndarray, top_p: float) -> np.ndarray:
    """Zero out tokens outside the smallest set with mass >= top_p."""
    if not 0 < top_p <= 1:
        raise ValueError("top_p must be in (0, 1]")
    if top_p == 1.0:
        return probs
    order = np.argsort(probs)[::-1]
    sorted_probs = probs[order]
    cumulative = np.cumsum(sorted_probs)
    cutoff = int(np.searchsorted(cumulative, top_p) + 1)
    keep = order[:cutoff]
    filtered = np.zeros_like(probs)
    filtered[keep] = probs[keep]
    total = filtered.sum()
    if total <= 0:
        # degenerate distribution: fall back to argmax
        filtered[order[0]] = 1.0
        return filtered
    return filtered / total


def sample_token(
    logits: np.ndarray,
    temperature: float,
    top_p: float,
    rng: np.random.Generator,
) -> int:
    """Draw one token id from logits with temperature + nucleus sampling."""
    probs = softmax(apply_temperature(np.asarray(logits, dtype=np.float64), temperature))
    probs = nucleus_filter(probs, top_p)
    return int(rng.choice(len(probs), p=probs))
