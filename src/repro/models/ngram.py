"""A trainable n-gram language model over BPE tokens.

This is the reproduction's CPU-trainable stand-in for "fine-tuning a
pre-trained LLM": an interpolated-backoff n-gram LM that can genuinely be
trained on the Verilog corpus and sampled with the same temperature /
top-p / max-tokens interface as the big models.  It exercises the entire
train -> sample -> compile -> test-bench pipeline end to end.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..tokenizer import BPETokenizer
from .base import Completion, GenerationConfig, LanguageModel, stable_hash
from .sampling import nucleus_filter


@dataclass
class NGramModel(LanguageModel):
    """Interpolated backoff n-gram LM.

    Probability of the next token interpolates the maximum-likelihood
    estimates of all orders 1..n with weights proportional to
    ``lambda_base ** (n - order)`` (higher orders dominate when they have
    evidence), plus add-k smoothing over the vocabulary at order 1.
    """

    tokenizer: BPETokenizer
    order: int = 4
    lambda_base: float = 0.4
    add_k: float = 0.01
    name: str = "ngram"
    seed: int = 0
    _counts: dict[int, dict[tuple[int, ...], Counter]] = field(
        default_factory=dict, repr=False
    )
    _trained_tokens: int = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, text: str) -> "NGramModel":
        """Count n-grams of all orders over the training text."""
        tokens = self.tokenizer.encode(text)
        self._counts = {
            n: defaultdict(Counter) for n in range(1, self.order + 1)
        }
        for n in range(1, self.order + 1):
            counts = self._counts[n]
            for i in range(len(tokens) - n + 1):
                context = tuple(tokens[i : i + n - 1])
                counts[context][tokens[i + n - 1]] += 1
        self._trained_tokens = len(tokens)
        return self

    @property
    def trained_tokens(self) -> int:
        return self._trained_tokens

    # ------------------------------------------------------------------
    # Probability / perplexity
    # ------------------------------------------------------------------
    def next_distribution(self, context: list[int]) -> np.ndarray:
        """Interpolated next-token probability vector."""
        vocab = self.tokenizer.vocab_size
        probs = np.full(vocab, self.add_k / vocab, dtype=np.float64)
        total_weight = self.add_k
        for n in range(1, self.order + 1):
            ctx = tuple(context[-(n - 1):]) if n > 1 else ()
            counter = self._counts.get(n, {}).get(ctx)
            if not counter:
                continue
            weight = self.lambda_base ** (self.order - n)
            count_total = sum(counter.values())
            for token, count in counter.items():
                probs[token] += weight * count / count_total
            total_weight += weight
        return probs / total_weight

    def log_prob(self, tokens: list[int]) -> float:
        """Total natural-log probability of a token sequence."""
        total = 0.0
        for i in range(1, len(tokens)):
            dist = self.next_distribution(tokens[:i])
            total += float(np.log(max(dist[tokens[i]], 1e-12)))
        return total

    def perplexity(self, text: str) -> float:
        """Per-token perplexity of ``text`` under the model."""
        tokens = self.tokenizer.encode(text)
        if len(tokens) < 2:
            return float("inf")
        return float(np.exp(-self.log_prob(tokens) / (len(tokens) - 1)))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, prompt: str, config: GenerationConfig) -> list[Completion]:
        rng = np.random.default_rng(
            [self.seed, stable_hash(prompt) & 0xFFFFFFFF, int(config.temperature * 1000)]
        )
        completions = []
        for _ in range(config.n):
            start = time.perf_counter()
            tokens = self.tokenizer.encode(prompt)
            generated: list[int] = []
            for _ in range(config.max_tokens):
                dist = self.next_distribution(tokens + generated)
                logits = np.log(np.maximum(dist, 1e-12)) / config.temperature
                shifted = np.exp(logits - logits.max())
                probs = nucleus_filter(shifted / shifted.sum(), config.top_p)
                token = int(rng.choice(len(probs), p=probs))
                generated.append(token)
            text = self.tokenizer.decode(generated)
            elapsed = time.perf_counter() - start
            completions.append(
                Completion(text=text, inference_seconds=elapsed, tokens=len(generated))
            )
        return completions
