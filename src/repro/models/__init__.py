"""LLM substrate: trainable LMs, sampling, and the calibrated model zoo."""

from .base import (
    Completion,
    GenerationConfig,
    LanguageModel,
    MODEL_SPECS,
    MODEL_TABLE,
    ModelSpec,
    stable_hash,
)
from .calibration import (
    COMPILE_RATES,
    COMPLETIONS_PER_PROMPT,
    FUNCTIONAL_RATES,
    INFERENCE_SECONDS,
    PROBLEM_HARDNESS,
    TEMPERATURES,
    RatePoint,
    resolve_rates,
    temperature_factor,
)
from .finetune import (
    FineTuneReport,
    finetune_ngram,
    finetune_transformer,
    finetune_zoo_model,
    train_tokenizer,
)
from .mutations import SYNTAX_MUTATORS, break_syntax, cosmetic_variant
from .ngram import NGramModel
from .sampling import apply_temperature, nucleus_filter, sample_token, softmax
from .transformer import TransformerConfig, TransformerLM
from .zoo import (
    SimulatedLLM,
    make_model,
    match_prompt_to_problem,
    paper_model_variants,
    repairable_model_variants,
)

__all__ = [
    "COMPILE_RATES",
    "COMPLETIONS_PER_PROMPT",
    "Completion",
    "FUNCTIONAL_RATES",
    "FineTuneReport",
    "GenerationConfig",
    "INFERENCE_SECONDS",
    "LanguageModel",
    "MODEL_SPECS",
    "MODEL_TABLE",
    "ModelSpec",
    "NGramModel",
    "PROBLEM_HARDNESS",
    "RatePoint",
    "SYNTAX_MUTATORS",
    "SimulatedLLM",
    "TEMPERATURES",
    "TransformerConfig",
    "TransformerLM",
    "apply_temperature",
    "break_syntax",
    "cosmetic_variant",
    "finetune_ngram",
    "finetune_transformer",
    "finetune_zoo_model",
    "make_model",
    "match_prompt_to_problem",
    "nucleus_filter",
    "paper_model_variants",
    "repairable_model_variants",
    "resolve_rates",
    "sample_token",
    "softmax",
    "stable_hash",
    "temperature_factor",
    "train_tokenizer",
]
