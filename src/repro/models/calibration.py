"""Calibration data: the paper's reported rates, encoded verbatim.

The simulated model zoo emits completions whose defect rates are
calibrated so that the *measured* pipeline (our compiler + test benches)
reproduces Tables III and IV.  This module holds those targets plus the
behavioural knobs the paper describes qualitatively:

* Table III — Pass@(scenario*10) for compilation, per difficulty;
* Table IV — Pass@(scenario*10) for functional tests, per difficulty and
  prompt-description level, plus per-query inference times;
* Sec. VI hardness — problems 7 and 12 pass (essentially) never, problem 9
  almost never, even for the best models;
* Fig. 6 — pass rates decay exponentially as temperature rises past the
  best setting;
* Sec. VI ablation — fine-tuning on GitHub+books is 1.4% better than
  GitHub alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..problems import Difficulty, PromptLevel

# (model, fine_tuned) -> {difficulty: compile rate}   [Table III]
COMPILE_RATES: dict[tuple[str, bool], dict[Difficulty, float]] = {
    ("megatron-355m", False): {
        Difficulty.BASIC: 0.000, Difficulty.INTERMEDIATE: 0.000, Difficulty.ADVANCED: 0.000,
    },
    ("megatron-355m", True): {
        Difficulty.BASIC: 0.730, Difficulty.INTERMEDIATE: 0.391, Difficulty.ADVANCED: 0.165,
    },
    ("codegen-2b", False): {
        Difficulty.BASIC: 0.080, Difficulty.INTERMEDIATE: 0.065, Difficulty.ADVANCED: 0.176,
    },
    ("codegen-2b", True): {
        Difficulty.BASIC: 0.902, Difficulty.INTERMEDIATE: 0.612, Difficulty.ADVANCED: 0.592,
    },
    ("codegen-6b", False): {
        Difficulty.BASIC: 0.052, Difficulty.INTERMEDIATE: 0.152, Difficulty.ADVANCED: 0.187,
    },
    ("codegen-6b", True): {
        Difficulty.BASIC: 0.987, Difficulty.INTERMEDIATE: 0.689, Difficulty.ADVANCED: 0.599,
    },
    ("j1-large-7b", False): {
        Difficulty.BASIC: 0.182, Difficulty.INTERMEDIATE: 0.176, Difficulty.ADVANCED: 0.108,
    },
    ("j1-large-7b", True): {
        Difficulty.BASIC: 0.882, Difficulty.INTERMEDIATE: 0.635, Difficulty.ADVANCED: 0.588,
    },
    ("codegen-16b", False): {
        Difficulty.BASIC: 0.132, Difficulty.INTERMEDIATE: 0.203, Difficulty.ADVANCED: 0.240,
    },
    ("codegen-16b", True): {
        Difficulty.BASIC: 0.942, Difficulty.INTERMEDIATE: 0.728, Difficulty.ADVANCED: 0.596,
    },
    ("code-davinci-002", False): {
        Difficulty.BASIC: 0.847, Difficulty.INTERMEDIATE: 0.452, Difficulty.ADVANCED: 0.569,
    },
}

_L, _M, _H = PromptLevel.LOW, PromptLevel.MEDIUM, PromptLevel.HIGH

# (model, fine_tuned) -> {difficulty: {level: functional rate}}  [Table IV]
FUNCTIONAL_RATES: dict[
    tuple[str, bool], dict[Difficulty, dict[PromptLevel, float]]
] = {
    ("megatron-355m", False): {
        Difficulty.BASIC: {_L: 0.000, _M: 0.000, _H: 0.000},
        Difficulty.INTERMEDIATE: {_L: 0.000, _M: 0.000, _H: 0.000},
        Difficulty.ADVANCED: {_L: 0.000, _M: 0.000, _H: 0.000},
    },
    ("megatron-355m", True): {
        Difficulty.BASIC: {_L: 0.170, _M: 0.591, _H: 0.245},
        Difficulty.INTERMEDIATE: {_L: 0.043, _M: 0.018, _H: 0.025},
        Difficulty.ADVANCED: {_L: 0.000, _M: 0.000, _H: 0.000},
    },
    ("codegen-2b", False): {
        Difficulty.BASIC: {_L: 0.000, _M: 0.000, _H: 0.000},
        Difficulty.INTERMEDIATE: {_L: 0.000, _M: 0.000, _H: 0.000},
        Difficulty.ADVANCED: {_L: 0.000, _M: 0.016, _H: 0.020},
    },
    ("codegen-2b", True): {
        Difficulty.BASIC: {_L: 0.835, _M: 0.350, _H: 0.630},
        Difficulty.INTERMEDIATE: {_L: 0.130, _M: 0.092, _H: 0.163},
        Difficulty.ADVANCED: {_L: 0.132, _M: 0.048, _H: 0.068},
    },
    ("codegen-6b", False): {
        Difficulty.BASIC: {_L: 0.000, _M: 0.000, _H: 0.000},
        Difficulty.INTERMEDIATE: {_L: 0.000, _M: 0.000, _H: 0.013},
        Difficulty.ADVANCED: {_L: 0.000, _M: 0.000, _H: 0.000},
    },
    ("codegen-6b", True): {
        Difficulty.BASIC: {_L: 1.000, _M: 0.500, _H: 0.760},
        Difficulty.INTERMEDIATE: {_L: 0.135, _M: 0.150, _H: 0.168},
        Difficulty.ADVANCED: {_L: 0.284, _M: 0.164, _H: 0.164},
    },
    ("j1-large-7b", False): {
        Difficulty.BASIC: {_L: 0.044, _M: 0.058, _H: 0.067},
        Difficulty.INTERMEDIATE: {_L: 0.000, _M: 0.000, _H: 0.021},
        Difficulty.ADVANCED: {_L: 0.000, _M: 0.000, _H: 0.000},
    },
    ("j1-large-7b", True): {
        Difficulty.BASIC: {_L: 0.388, _M: 0.283, _H: 0.342},
        Difficulty.INTERMEDIATE: {_L: 0.125, _M: 0.075, _H: 0.200},
        Difficulty.ADVANCED: {_L: 0.000, _M: 0.000, _H: 0.000},
    },
    ("codegen-16b", False): {
        Difficulty.BASIC: {_L: 0.000, _M: 0.085, _H: 0.055},
        Difficulty.INTERMEDIATE: {_L: 0.035, _M: 0.003, _H: 0.045},
        Difficulty.ADVANCED: {_L: 0.012, _M: 0.000, _H: 0.016},
    },
    ("codegen-16b", True): {
        Difficulty.BASIC: {_L: 0.745, _M: 0.720, _H: 0.745},
        Difficulty.INTERMEDIATE: {_L: 0.213, _M: 0.270, _H: 0.255},
        Difficulty.ADVANCED: {_L: 0.246, _M: 0.290, _H: 0.294},
    },
    ("code-davinci-002", False): {
        Difficulty.BASIC: {_L: 0.520, _M: 0.685, _H: 0.775},
        Difficulty.INTERMEDIATE: {_L: 0.175, _M: 0.200, _H: 0.150},
        Difficulty.ADVANCED: {_L: 0.156, _M: 0.184, _H: 0.344},
    },
}

# (model, fine_tuned) -> per-query inference seconds  [Table IV column 3]
INFERENCE_SECONDS: dict[tuple[str, bool], float] = {
    ("megatron-355m", False): 3.628,
    ("megatron-355m", True): 0.175,
    ("codegen-2b", False): 1.478,
    ("codegen-2b", True): 0.665,
    ("codegen-6b", False): 2.332,
    ("codegen-6b", True): 0.710,
    ("j1-large-7b", False): 7.146,
    ("j1-large-7b", True): 2.029,
    ("codegen-16b", False): 2.835,
    ("codegen-16b", True): 1.994,
    ("code-davinci-002", False): 3.885,
}

# Sec. VI hardness: per-problem multipliers on the functional rate.  The
# scenario aggregate is preserved by renormalizing over the problems of
# the same difficulty (see hardness_factor).
PROBLEM_HARDNESS: dict[int, float] = {7: 0.0, 9: 0.08, 12: 0.0}

# Fig. 6: exponential decay of pass rates with temperature beyond best-t.
TEMPERATURE_DECAY = 2.5
TEMPERATURES = (0.1, 0.3, 0.5, 0.7, 1.0)
COMPLETIONS_PER_PROMPT = (1, 10, 25)

# Mild completions-per-prompt effect (Sec. V-B-2: "n = 10 is good").
N_FACTOR = {1: 0.92, 10: 1.0, 25: 1.02}

# Sec. VI ablation: GitHub+books fine-tuning is 1.4% (relative) better.
TEXTBOOK_BONUS = 1.014

# Prompt-engineering intervention (paper future work): a targeted hint
# lifts a problem's hardness multiplier at least this high.
HINT_HARDNESS_FLOOR = 0.5


@dataclass(frozen=True)
class RatePoint:
    """Resolved generation probabilities for one query."""

    p_functional: float
    p_compile: float
    inference_seconds: float


def hardness_factor(
    problem_number: int, difficulty_problem_numbers: list[int]
) -> float:
    """Per-problem multiplier that preserves the difficulty aggregate."""
    weights = [
        PROBLEM_HARDNESS.get(number, 1.0)
        for number in difficulty_problem_numbers
    ]
    total = sum(weights)
    if total <= 0:
        return 1.0
    own = PROBLEM_HARDNESS.get(problem_number, 1.0)
    return own * len(weights) / total


def temperature_factor(temperature: float, best_t: float = 0.1) -> float:
    """Fig. 6 shape: best at ``best_t``, exponential decay above it."""
    import math

    if temperature >= best_t:
        return math.exp(-TEMPERATURE_DECAY * (temperature - best_t))
    return math.exp(-TEMPERATURE_DECAY * (best_t - temperature))


def resolve_rates(
    model: str,
    fine_tuned: bool,
    difficulty: Difficulty,
    level: PromptLevel,
    problem_number: int,
    difficulty_problem_numbers: list[int],
    temperature: float,
    n: int,
    best_t: float = 0.1,
    textbook_corpus: bool = False,
    hinted: bool = False,
) -> RatePoint:
    """Final per-completion probabilities for one (model, query) pair.

    ``hinted`` models the prompt-engineering intervention of
    :mod:`repro.eval.prompting`: the per-problem hardness multiplier is
    floored at HINT_HARDNESS_FLOOR, so the paper's always-failing
    problems become merely difficult.
    """
    key = (model, fine_tuned)
    if key not in COMPILE_RATES:
        raise KeyError(f"no calibration for {model} fine_tuned={fine_tuned}")
    base_func = FUNCTIONAL_RATES[key][difficulty][level]
    base_compile = COMPILE_RATES[key][difficulty]
    hardness = hardness_factor(problem_number, difficulty_problem_numbers)
    if hinted:
        hardness = max(hardness, HINT_HARDNESS_FLOOR)
    factor = (
        hardness
        * temperature_factor(temperature, best_t)
        * N_FACTOR.get(n, 1.0)
    )
    if textbook_corpus and fine_tuned:
        factor *= TEXTBOOK_BONUS
    p_functional = min(1.0, base_func * factor)
    # compile rate shares the temperature decay but not problem hardness
    p_compile = min(1.0, base_compile * temperature_factor(temperature, best_t))
    # coherence: a functionally-correct completion necessarily compiles
    p_compile = max(p_compile, p_functional)
    return RatePoint(
        p_functional=p_functional,
        p_compile=p_compile,
        inference_seconds=INFERENCE_SECONDS[key],
    )
