"""A miniature GPT-style transformer LM in pure numpy (forward + backprop).

This is the second real trainable substrate (beside the n-gram LM): a
causal decoder with learned position embeddings, pre-norm blocks,
multi-head attention, GELU MLPs and tied input/output embeddings, trained
with Adam.  It is intentionally tiny — the point is to exercise genuine
gradient-based fine-tuning on the Verilog corpus inside the same
:class:`~repro.models.base.LanguageModel` interface the paper's 16B
models implement, not to compete with them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..tokenizer import BPETokenizer
from .base import Completion, GenerationConfig, LanguageModel, stable_hash
from .sampling import nucleus_filter


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters."""

    vocab_size: int
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    context: int = 128
    mlp_ratio: int = 4

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads:
            raise ValueError("d_model must be divisible by n_heads")


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))


def _gelu_grad(x: np.ndarray) -> np.ndarray:
    tanh_arg = 0.7978845608 * (x + 0.044715 * x**3)
    tanh_val = np.tanh(tanh_arg)
    sech2 = 1.0 - tanh_val**2
    return 0.5 * (1.0 + tanh_val) + 0.5 * x * sech2 * 0.7978845608 * (
        1.0 + 3 * 0.044715 * x**2
    )


class _LayerNorm:
    """Layer norm with cached stats for backprop."""

    @staticmethod
    def forward(x, gamma, beta, eps=1e-5):
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        norm = (x - mean) / np.sqrt(var + eps)
        return norm * gamma + beta, (norm, var, eps)

    @staticmethod
    def backward(dout, cache, gamma):
        norm, var, eps = cache
        d = norm.shape[-1]
        dnorm = dout * gamma
        dgamma = (dout * norm).sum(axis=0)
        dbeta = dout.sum(axis=0)
        inv_std = 1.0 / np.sqrt(var + eps)
        dx = (
            dnorm
            - dnorm.mean(axis=-1, keepdims=True)
            - norm * (dnorm * norm).mean(axis=-1, keepdims=True)
        ) * inv_std
        return dx, dgamma, dbeta


class TransformerLM(LanguageModel):
    """Trainable numpy transformer (single-sequence steps, Adam)."""

    def __init__(
        self,
        tokenizer: BPETokenizer,
        config: TransformerConfig | None = None,
        seed: int = 0,
        name: str = "tiny-transformer",
    ):
        self.tokenizer = tokenizer
        self.config = config or TransformerConfig(vocab_size=tokenizer.vocab_size)
        if self.config.vocab_size < tokenizer.vocab_size:
            raise ValueError("config vocab smaller than tokenizer vocab")
        self.name = name
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.params = self._init_params()
        self._adam_m = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._adam_v = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._adam_t = 0

    # ------------------------------------------------------------------
    def _init_params(self) -> dict[str, np.ndarray]:
        cfg = self.config
        scale = 0.02
        params: dict[str, np.ndarray] = {
            "wte": self._rng.normal(0, scale, (cfg.vocab_size, cfg.d_model)),
            "wpe": self._rng.normal(0, scale, (cfg.context, cfg.d_model)),
            "lnf_g": np.ones(cfg.d_model),
            "lnf_b": np.zeros(cfg.d_model),
        }
        hidden = cfg.d_model * cfg.mlp_ratio
        for layer in range(cfg.n_layers):
            prefix = f"h{layer}."
            params[prefix + "ln1_g"] = np.ones(cfg.d_model)
            params[prefix + "ln1_b"] = np.zeros(cfg.d_model)
            params[prefix + "qkv_w"] = self._rng.normal(
                0, scale, (cfg.d_model, 3 * cfg.d_model)
            )
            params[prefix + "qkv_b"] = np.zeros(3 * cfg.d_model)
            params[prefix + "proj_w"] = self._rng.normal(
                0, scale, (cfg.d_model, cfg.d_model)
            )
            params[prefix + "proj_b"] = np.zeros(cfg.d_model)
            params[prefix + "ln2_g"] = np.ones(cfg.d_model)
            params[prefix + "ln2_b"] = np.zeros(cfg.d_model)
            params[prefix + "mlp1_w"] = self._rng.normal(
                0, scale, (cfg.d_model, hidden)
            )
            params[prefix + "mlp1_b"] = np.zeros(hidden)
            params[prefix + "mlp2_w"] = self._rng.normal(
                0, scale, (hidden, cfg.d_model)
            )
            params[prefix + "mlp2_b"] = np.zeros(cfg.d_model)
        return params

    @property
    def parameter_count(self) -> int:
        return sum(v.size for v in self.params.values())

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _forward(self, tokens: np.ndarray, want_cache: bool):
        cfg = self.config
        p = self.params
        seq_len = len(tokens)
        x = p["wte"][tokens] + p["wpe"][:seq_len]
        caches = []
        head_dim = cfg.d_model // cfg.n_heads
        mask = np.tril(np.ones((seq_len, seq_len), dtype=bool))
        for layer in range(cfg.n_layers):
            prefix = f"h{layer}."
            ln1, ln1_cache = _LayerNorm.forward(
                x, p[prefix + "ln1_g"], p[prefix + "ln1_b"]
            )
            qkv = ln1 @ p[prefix + "qkv_w"] + p[prefix + "qkv_b"]
            q, k, v = np.split(qkv, 3, axis=-1)
            q = q.reshape(seq_len, cfg.n_heads, head_dim).transpose(1, 0, 2)
            k = k.reshape(seq_len, cfg.n_heads, head_dim).transpose(1, 0, 2)
            v = v.reshape(seq_len, cfg.n_heads, head_dim).transpose(1, 0, 2)
            scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
            scores = np.where(mask[None, :, :], scores, -1e9)
            scores -= scores.max(axis=-1, keepdims=True)
            att = np.exp(scores)
            att /= att.sum(axis=-1, keepdims=True)
            context = att @ v
            merged = context.transpose(1, 0, 2).reshape(seq_len, cfg.d_model)
            attn_out = merged @ p[prefix + "proj_w"] + p[prefix + "proj_b"]
            x1 = x + attn_out
            ln2, ln2_cache = _LayerNorm.forward(
                x1, p[prefix + "ln2_g"], p[prefix + "ln2_b"]
            )
            pre_act = ln2 @ p[prefix + "mlp1_w"] + p[prefix + "mlp1_b"]
            act = _gelu(pre_act)
            mlp_out = act @ p[prefix + "mlp2_w"] + p[prefix + "mlp2_b"]
            x2 = x1 + mlp_out
            if want_cache:
                caches.append(
                    dict(
                        x=x, ln1=ln1, ln1_cache=ln1_cache, q=q, k=k, v=v,
                        att=att, merged=merged, x1=x1, ln2=ln2,
                        ln2_cache=ln2_cache, pre_act=pre_act, act=act,
                    )
                )
            x = x2
        final, lnf_cache = _LayerNorm.forward(x, p["lnf_g"], p["lnf_b"])
        logits = final @ p["wte"].T
        if want_cache:
            return logits, dict(
                tokens=tokens, final=final, lnf_cache=lnf_cache,
                last_x=x, layers=caches, mask=mask,
            )
        return logits, None

    def logits(self, tokens: list[int]) -> np.ndarray:
        """Next-token logits at every position."""
        clipped = np.asarray(tokens[-self.config.context:], dtype=np.int64)
        out, _ = self._forward(clipped, want_cache=False)
        return out

    # ------------------------------------------------------------------
    # Loss and backprop
    # ------------------------------------------------------------------
    def loss_and_grads(self, tokens: list[int]):
        """Cross-entropy of next-token prediction plus parameter grads."""
        cfg = self.config
        p = self.params
        seq = np.asarray(tokens[: cfg.context], dtype=np.int64)
        if len(seq) < 2:
            raise ValueError("need at least 2 tokens")
        inputs, targets = seq[:-1], seq[1:]
        logits, cache = self._forward(inputs, want_cache=True)
        seq_len = len(inputs)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=-1, keepdims=True)
        loss = -np.log(
            np.maximum(probs[np.arange(seq_len), targets], 1e-12)
        ).mean()

        grads = {k: np.zeros_like(v) for k, v in p.items()}
        dlogits = probs.copy()
        dlogits[np.arange(seq_len), targets] -= 1.0
        dlogits /= seq_len

        grads["wte"] += dlogits.T @ cache["final"]
        dfinal = dlogits @ p["wte"]
        dx, dg, db = _LayerNorm.backward(dfinal, cache["lnf_cache"], p["lnf_g"])
        grads["lnf_g"] += dg
        grads["lnf_b"] += db

        head_dim = cfg.d_model // cfg.n_heads
        for layer in reversed(range(cfg.n_layers)):
            prefix = f"h{layer}."
            c = cache["layers"][layer]
            # x2 = x1 + mlp_out
            dmlp_out = dx
            grads[prefix + "mlp2_w"] += c["act"].T @ dmlp_out
            grads[prefix + "mlp2_b"] += dmlp_out.sum(axis=0)
            dact = dmlp_out @ p[prefix + "mlp2_w"].T
            dpre = dact * _gelu_grad(c["pre_act"])
            grads[prefix + "mlp1_w"] += c["ln2"].T @ dpre
            grads[prefix + "mlp1_b"] += dpre.sum(axis=0)
            dln2 = dpre @ p[prefix + "mlp1_w"].T
            dx1_from_ln, dg2, db2 = _LayerNorm.backward(
                dln2, c["ln2_cache"], p[prefix + "ln2_g"]
            )
            grads[prefix + "ln2_g"] += dg2
            grads[prefix + "ln2_b"] += db2
            dx1 = dx + dx1_from_ln
            # x1 = x + attn_out
            dattn_out = dx1
            grads[prefix + "proj_w"] += c["merged"].T @ dattn_out
            grads[prefix + "proj_b"] += dattn_out.sum(axis=0)
            dmerged = dattn_out @ p[prefix + "proj_w"].T
            dcontext = dmerged.reshape(seq_len, cfg.n_heads, head_dim).transpose(
                1, 0, 2
            )
            datt = dcontext @ c["v"].transpose(0, 2, 1)
            dv = c["att"].transpose(0, 2, 1) @ dcontext
            # softmax backward (rows)
            att = c["att"]
            dscores = att * (datt - (datt * att).sum(axis=-1, keepdims=True))
            dscores /= np.sqrt(head_dim)
            dq = dscores @ c["k"]
            dk = dscores.transpose(0, 2, 1) @ c["q"]
            dqkv = np.concatenate(
                [
                    dq.transpose(1, 0, 2).reshape(seq_len, cfg.d_model),
                    dk.transpose(1, 0, 2).reshape(seq_len, cfg.d_model),
                    dv.transpose(1, 0, 2).reshape(seq_len, cfg.d_model),
                ],
                axis=-1,
            )
            grads[prefix + "qkv_w"] += c["ln1"].T @ dqkv
            grads[prefix + "qkv_b"] += dqkv.sum(axis=0)
            dln1 = dqkv @ p[prefix + "qkv_w"].T
            dx_from_ln, dg1, db1 = _LayerNorm.backward(
                dln1, c["ln1_cache"], p[prefix + "ln1_g"]
            )
            grads[prefix + "ln1_g"] += dg1
            grads[prefix + "ln1_b"] += db1
            dx = dx1 + dx_from_ln

        grads["wte"][cache["tokens"]] += dx
        grads["wpe"][: len(cache["tokens"])] += dx
        return float(loss), grads

    def adam_step(self, grads, lr=1e-3, beta1=0.9, beta2=0.999, eps=1e-8):
        """One Adam update over all parameters."""
        self._adam_t += 1
        t = self._adam_t
        for key, grad in grads.items():
            m = self._adam_m[key]
            v = self._adam_v[key]
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / (1 - beta1**t)
            v_hat = v / (1 - beta2**t)
            self.params[key] -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def fit(
        self,
        text: str,
        steps: int = 50,
        lr: float = 1e-3,
        window: int | None = None,
    ) -> list[float]:
        """Train on sliding windows of ``text``; returns per-step losses."""
        tokens = self.tokenizer.encode(text)
        window = window or self.config.context
        if len(tokens) < 8:
            raise ValueError("training text too short")
        losses = []
        for step in range(steps):
            if len(tokens) <= window:
                start = 0
            else:
                start = int(self._rng.integers(0, len(tokens) - window))
            chunk = tokens[start : start + window]
            if len(chunk) < 2:
                continue
            loss, grads = self.loss_and_grads(chunk)
            self.adam_step(grads, lr=lr)
            losses.append(loss)
        return losses

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, prompt: str, config: GenerationConfig) -> list[Completion]:
        rng = np.random.default_rng(
            [self.seed, stable_hash(prompt) & 0xFFFFFFFF, int(config.temperature * 1000)]
        )
        completions = []
        prompt_tokens = self.tokenizer.encode(prompt)
        for _ in range(config.n):
            start = time.perf_counter()
            generated: list[int] = []
            for _ in range(config.max_tokens):
                logits = self.logits(prompt_tokens + generated)[-1]
                scaled = logits / config.temperature
                shifted = np.exp(scaled - scaled.max())
                probs = nucleus_filter(shifted / shifted.sum(), config.top_p)
                generated.append(int(rng.choice(len(probs), p=probs)))
            completions.append(
                Completion(
                    text=self.tokenizer.decode(generated),
                    inference_seconds=time.perf_counter() - start,
                    tokens=len(generated),
                )
            )
        return completions


@dataclass
class TrainingReport:
    """Losses from a fit run, for examples/benchmarks."""

    losses: list[float] = field(default_factory=list)

    @property
    def initial(self) -> float:
        return self.losses[0] if self.losses else float("nan")

    @property
    def final(self) -> float:
        return self.losses[-1] if self.losses else float("nan")
