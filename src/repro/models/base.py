"""Model abstractions shared by trainable LMs and the simulated zoo.

:class:`LanguageModel` is the interface the evaluation harness consumes —
it matches the query surface the paper uses against its six LLMs
(Sec. IV-B): a prompt, a sampling temperature ``t``, ``n`` completions per
prompt, a ``max_tokens`` budget and nucleus mass ``top_p``.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field


def stable_hash(text: str) -> int:
    """Deterministic 64-bit hash (Python's hash() is salted per process)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


#: First line of every repair re-prompt (:mod:`repro.agentic.feedback`).
#: A comment so it never perturbs module-header matching, and a shared
#: constant so the zoo's "repairable" failure mode can recognize an
#: error-conditioned re-query without parsing the feedback text.
REPAIR_FEEDBACK_MARKER = "// repair feedback"


@dataclass(frozen=True)
class GenerationConfig:
    """Input parameters of one LLM query (paper Sec. IV-B)."""

    temperature: float = 0.1
    n: int = 10
    max_tokens: int = 300
    top_p: float = 1.0

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be > 0")
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        if not 0 < self.top_p <= 1:
            raise ValueError("top_p must be in (0, 1]")


@dataclass
class Completion:
    """One generated completion plus query metadata."""

    text: str
    inference_seconds: float = 0.0
    tokens: int = 0


@dataclass(frozen=True)
class ModelSpec:
    """Architecture metadata from the paper's Table I."""

    name: str
    parameters: str  # human form, e.g. "16B"
    parameter_count: int  # numeric, for size comparisons
    layers: int | None
    heads: int | None
    embed: int | None
    context_length: int | None
    pretraining: str
    fine_tunable: bool = True
    supports_n25: bool = True
    max_tokens: int = 300


# Table I of the paper, verbatim.
MODEL_TABLE: tuple[ModelSpec, ...] = (
    ModelSpec(
        name="megatron-355m",
        parameters="355M",
        parameter_count=355_000_000,
        layers=24,
        heads=16,
        embed=64,
        context_length=1024,
        pretraining="NL (BERT/GPT-2 corpora)",
    ),
    ModelSpec(
        name="j1-large-7b",
        parameters="7B",
        parameter_count=7_000_000_000,
        layers=32,
        heads=32,
        embed=128,
        context_length=4096,
        pretraining="NL",
        supports_n25=False,  # the AI21 API rejects n=25 (Sec. IV-B)
        max_tokens=256,
    ),
    ModelSpec(
        name="codegen-2b",
        parameters="2B",
        parameter_count=2_000_000_000,
        layers=32,
        heads=32,
        embed=80,
        context_length=2048,
        pretraining="NL (The Pile), Code",
    ),
    ModelSpec(
        name="codegen-6b",
        parameters="6B",
        parameter_count=6_000_000_000,
        layers=33,
        heads=16,
        embed=256,
        context_length=2048,
        pretraining="NL (The Pile), Code",
    ),
    ModelSpec(
        name="codegen-16b",
        parameters="16B",
        parameter_count=16_000_000_000,
        layers=34,
        heads=24,
        embed=256,
        context_length=2048,
        pretraining="NL (The Pile), Code",
    ),
    ModelSpec(
        name="code-davinci-002",
        parameters="NA",
        parameter_count=175_000_000_000,  # GPT-3 scale (architecture NA)
        layers=None,
        heads=None,
        embed=None,
        context_length=8000,
        pretraining="NL, Code",
        fine_tunable=False,  # only queried pre-trained in the paper
    ),
)

MODEL_SPECS = {spec.name: spec for spec in MODEL_TABLE}


class LanguageModel(abc.ABC):
    """Anything that can complete a Verilog prompt."""

    name: str = "lm"

    @abc.abstractmethod
    def generate(self, prompt: str, config: GenerationConfig) -> list[Completion]:
        """Return ``config.n`` completions for ``prompt``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class RecordedQuery:
    """A (prompt, config) pair kept for inspection in tests."""

    prompt: str
    config: GenerationConfig
    completions: list[Completion] = field(default_factory=list)
