"""Defect injectors for simulated completions.

Two families, mirroring the paper's observed failure classes:

* *syntax mutators* — turn a well-formed completion body into one our
  compiler rejects (missing semicolons, unbalanced begin/end, misspelled
  keywords, truncation before ``endmodule``, undeclared identifiers);
* *cosmetic variants* — semantics-preserving rewrites (comments,
  whitespace) giving the "similar responses when several completions per
  prompt are requested" texture the paper describes, while keeping the
  number of distinct texts small enough to cache evaluations.

Every syntax mutator is verified in tests to fail ``compile_design`` for
every problem body it is applied to.
"""

from __future__ import annotations

import random
import re


def drop_semicolon(body: str, rng: random.Random) -> str:
    """Remove one semicolon."""
    positions = [i for i, ch in enumerate(body) if ch == ";"]
    if not positions:
        return body + "\nwire"  # force an error anyway
    cut = rng.choice(positions)
    return body[:cut] + body[cut + 1:]


def drop_end(body: str, rng: random.Random) -> str:
    """Remove one ``end`` keyword (keeps ``endmodule``)."""
    matches = [m for m in re.finditer(r"\bend\b", body)]
    if not matches:
        return misspell_keyword(body, rng)
    chosen = rng.choice(matches)
    return body[: chosen.start()] + body[chosen.end():]


def misspell_keyword(body: str, rng: random.Random) -> str:
    """Misspell a structural keyword."""
    swaps = [
        (r"\bendmodule\b", "endmodul"),
        (r"\balways\b", "alway s"),
        (r"\bassign\b", "assing ="),
        (r"\bbegin\b", "begn ("),
    ]
    rng.shuffle(swaps)
    for pattern, replacement in swaps:
        if re.search(pattern, body):
            return re.sub(pattern, replacement, body, count=1)
    return body + "\nendmodul"


def unclosed_paren(body: str, rng: random.Random) -> str:
    """Remove one closing parenthesis."""
    positions = [i for i, ch in enumerate(body) if ch == ")"]
    if not positions:
        return drop_semicolon(body, rng)
    cut = rng.choice(positions)
    return body[:cut] + body[cut + 1:]


def truncate_mid_statement(body: str, rng: random.Random) -> str:
    """Cut the body off before ``endmodule`` (token-budget exhaustion)."""
    end = body.find("endmodule")
    if end <= 4:
        return body[: max(1, len(body) // 3)]
    cut = rng.randrange(max(1, end // 2), end - 2)
    return body[:cut]


def undeclared_identifier(body: str, rng: random.Random) -> str:
    """Reference a signal that was never declared (elaboration error)."""
    insert_at = body.find("endmodule")
    stmt = "  assign phantom_net_q = undeclared_signal_xyz;\n"
    if insert_at < 0:
        return stmt + body
    return body[:insert_at] + stmt + body[insert_at:]


def keyword_as_identifier(body: str, rng: random.Random) -> str:
    """Declare a net whose name is a reserved word (parse error)."""
    insert_at = body.find("endmodule")
    stmt = "  wire module;\n"
    if insert_at < 0:
        return stmt + body
    return body[:insert_at] + stmt + body[insert_at:]


SYNTAX_MUTATORS = (
    drop_semicolon,
    drop_end,
    misspell_keyword,
    unclosed_paren,
    truncate_mid_statement,
    undeclared_identifier,
    keyword_as_identifier,
)


def break_syntax(body: str, rng: random.Random) -> str:
    """Apply one randomly-chosen syntax mutator."""
    mutator = rng.choice(SYNTAX_MUTATORS)
    return mutator(body, rng)


# ----------------------------------------------------------------------
# Cosmetic (semantics-preserving) variation
# ----------------------------------------------------------------------
_COMMENT_BANK = (
    "",
    "  // synthesizable implementation\n",
    "  // generated completion\n",
    "  // behavioural model\n",
)

_TRAILERS = (
    "",
    "\n// end of module\n",
    "\n\nmodule scratch(); endmodule\n",  # trailing junk the harness truncates
    "\n// The module above implements the requested behaviour.\n",
)


def cosmetic_variant(body: str, rng: random.Random) -> str:
    """One of a small, finite set of equivalent presentations of ``body``.

    The set is deliberately tiny (|comments| x |trailers| = 16) so the
    evaluation cache collapses repeated completions, just as the paper
    notes that "LLMs tend to provide similar responses".
    """
    comment = rng.choice(_COMMENT_BANK)
    trailer = rng.choice(_TRAILERS)
    return comment + body.rstrip("\n") + trailer


def broken_completion(body: str, rng: random.Random) -> str:
    """A syntax-broken completion: comment prefix + mutated raw body.

    Trailers are deliberately *not* added: truncation at the first
    ``endmodule`` must never be able to discard the injected defect.
    """
    return rng.choice(_COMMENT_BANK) + break_syntax(body, rng)
