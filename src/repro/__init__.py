"""repro — reproduction of "Benchmarking Large Language Models for
Automated Verilog RTL Code Generation" (Thakur et al., DATE 2023).

Subpackages:

* :mod:`repro.verilog` — Verilog-2001-subset compiler + event-driven
  simulator (the Icarus Verilog stand-in);
* :mod:`repro.corpus` — training-corpus pipeline (GitHub gather, MinHash
  dedup, filters, textbook cleaning);
* :mod:`repro.tokenizer` — byte-pair encoding from scratch;
* :mod:`repro.models` — trainable LMs (n-gram, tiny transformer) and the
  calibrated simulated zoo of the paper's six LLMs;
* :mod:`repro.problems` — the 17-problem benchmark set with L/M/H prompts
  and self-checking test benches;
* :mod:`repro.eval` — truncation, compile/functional gates, metrics,
  job-based sweep planner/executor, table/figure reporting;
* :mod:`repro.backends` — pluggable generation backends (local zoo,
  deterministic stub, offline-safe HTTP chat adapter, eval-service
  client) plus registry;
* :mod:`repro.service` — the distributed sweep service: HTTP eval
  server, shard planner/merger, process-pool executor;
* :mod:`repro.api` — the stable service facade (:class:`Session`);
* :mod:`repro.core` — the end-to-end pipeline facade.
"""

from .api import Session, evaluate_model
from .core import VGenConfig, VGenPipeline, VGenResult, quick_evaluate

__version__ = "1.1.0"

__all__ = [
    "Session",
    "VGenConfig",
    "VGenPipeline",
    "VGenResult",
    "__version__",
    "evaluate_model",
    "quick_evaluate",
]
