"""repro — reproduction of "Benchmarking Large Language Models for
Automated Verilog RTL Code Generation" (Thakur et al., DATE 2023).

Subpackages:

* :mod:`repro.verilog` — Verilog-2001-subset compiler + event-driven
  simulator (the Icarus Verilog stand-in);
* :mod:`repro.corpus` — training-corpus pipeline (GitHub gather, MinHash
  dedup, filters, textbook cleaning);
* :mod:`repro.tokenizer` — byte-pair encoding from scratch;
* :mod:`repro.models` — trainable LMs (n-gram, tiny transformer) and the
  calibrated simulated zoo of the paper's six LLMs;
* :mod:`repro.problems` — the 17-problem benchmark set with L/M/H prompts
  and self-checking test benches;
* :mod:`repro.eval` — truncation, compile/functional gates, metrics,
  sweep harness, table/figure reporting;
* :mod:`repro.core` — the end-to-end pipeline facade.
"""

from .core import VGenConfig, VGenPipeline, VGenResult, quick_evaluate

__version__ = "1.0.0"

__all__ = [
    "VGenConfig",
    "VGenPipeline",
    "VGenResult",
    "__version__",
    "quick_evaluate",
]
