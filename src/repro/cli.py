"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``problems`` — list the 17-problem benchmark set (Table II);
* ``prompt N [--level L|M|H]`` — print one problem's prompt;
* ``compile FILE`` — compile a Verilog file with the built-in frontend;
* ``simulate FILE [--top NAME]`` — compile and simulate, print output;
* ``lint FILE`` — run the static lint checks;
* ``evaluate [--model NAME] [--ft] [--n N] [--temperature T]
  [--backend B] [--workers W]`` — query a model on the whole problem set
  and print per-problem verdicts;
* ``sweep [--models A,B] [--backend B] [--workers W] [--executor E]
  [--shards K --shard-index I] [--export PATH] ...`` — plan + run a
  configurable sweep through the job service (optionally one shard of
  it); print jobs/skips/errors and optionally export records to
  JSON/CSV (or a mergeable shard-result file); with ``--stream --url``
  the sweep runs on a remote streaming service and progress renders
  live as NDJSON events arrive; ``--repair-budget N`` gives every
  failing sample up to N agentic repair rounds (error-conditioned
  re-prompts through the repair loop) before its final verdict;
* ``repair [--budgets 0,1,2] [--k K] [--backend B] ...`` — run the
  same sweep at several repair budgets and print the pass@k-vs-budget
  curve (the agentic workload's headline; try ``--backend zoo-repair``,
  whose calibrated models fix a tunable fraction of their own failures
  when re-prompted with their error);
* ``merge SHARD.json ... [--export PATH]`` — recombine executed shard
  files into one serial-order result;
* ``serve [--backend B] [--host H] [--port P] [--workers W] [--aio]``
  — expose the session over HTTP (the eval service); ``--aio`` serves
  it on the asyncio server with the NDJSON streaming routes; point
  other machines at it with ``--backend service --url http://host:port``;
* ``coordinate --shards K [--lease-jobs N] [--lease-seconds S]
  [--checkpoint FILE [--checkpoint-every N]] [--aio] [--export PATH]
  ...`` — plan a sweep, split it, and serve work units to pull-based
  workers over HTTP, merging results as they stream in (no per-worker
  index bookkeeping; expired leases are re-served); ``--lease-jobs N``
  leases job ranges of at most N jobs instead of whole shards so one
  straggler re-balances finely; ``--checkpoint`` persists state
  atomically and resumes from the file on restart without re-running
  merged units;
* ``work --url URL [--backend B] [--store DIR] [--aio --max-leases M]
  ...`` — run one pull-based worker against a coordinator until the
  sweep is merged; ``--aio`` holds several leases in flight on an
  asyncio executor and streams each unit's records to the coordinator
  as jobs finish;
* ``store {pack,compact,unpack,info} DIR`` — compact a verdict store's
  one-file-per-verdict directory into a single JSONL pack (and back);
  ``compact`` rewrites the pack without shadowed duplicate lines;
* ``tables [--backend B] [--workers W]`` — run the full sweep and print
  Tables III/IV + headlines + executor stats;
* ``stats TRACE ... [--json]`` — summarize trace files written by
  ``--trace``: per-stage time split, per-worker throughput, and
  job-latency percentiles (p50/p95/p99); arguments may be files,
  directories (every ``.trace``/``.ndjson`` inside) or glob patterns;
* ``hotspots TRACE ... [--coverage F] [--json]`` — rank simulator
  constructs by attributed wall time from ``--profile`` runs until the
  cumulative share reaches the coverage bar (default 80%);
* ``top --url URL [--interval S] [--once]`` — live terminal dashboard
  for a coordinator/service: lease table, per-worker throughput and
  telemetry liveness, stage split, repair lift, error rates;
* ``corpus [--repos N] [--books]`` — build the training corpus, print stats.

``sweep``, ``repair``, ``analyze``, ``coordinate`` and ``work``
additionally accept ``--trace FILE``: every span the run produces
(jobs, pipeline stages, repair rounds, merged units) is appended to
FILE as replayable NDJSON, plus a final metrics snapshot — feed one or
more such files to ``stats``.  ``sweep``, ``repair`` and ``work`` also
accept ``--profile`` (requires ``--trace``): the simulator attributes
wall time and expression-eval counts to netlist constructs and appends
per-problem ``profile`` frames to the trace — rank them with
``hotspots``.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_problems(_args) -> int:
    from .problems import ALL_PROBLEMS

    for problem in ALL_PROBLEMS:
        print(f"{problem.number:>2}  [{problem.difficulty}]  {problem.title}")
    return 0


def _cmd_prompt(args) -> int:
    from .problems import PromptLevel, get_problem

    level = {"L": PromptLevel.LOW, "M": PromptLevel.MEDIUM,
             "H": PromptLevel.HIGH}[args.level]
    print(get_problem(args.number).prompt(level), end="")
    return 0


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_compile(args) -> int:
    from .verilog import compile_design

    report = compile_design(_read(args.file), top=args.top)
    if report.ok:
        print("compile: OK")
        return 0
    print("compile: FAILED")
    print(report.error_text)
    return 1


def _cmd_simulate(args) -> int:
    from .verilog import run_simulation

    report, result = run_simulation(
        _read(args.file), top=args.top, max_time=args.max_time,
        compile_sim=args.compile_sim,
    )
    if not report.ok:
        print("compile: FAILED")
        print(report.error_text)
        return 1
    if result is None:
        print("simulation: RUNTIME ERROR")
        print(report.error_text)
        return 1
    print(result.text)
    print(f"-- finished={result.finished} at t={result.time}")
    if report.sim_engine is not None:
        plan = report.sim_engine
        print(f"-- engine=compiled two_state={plan['two_state']} "
              f"processes={plan['compiled']}/{plan['processes']} "
              f"fallbacks={len(plan['fallbacks'])}")
    if result.vcd is not None and result.vcd_file:
        result.vcd.write(result.vcd_file, top=args.top or "top")
        print(f"-- wrote {result.vcd_file}")
    return 0


def _cmd_lint(args) -> int:
    from .verilog import lint_source_unit, parse

    warnings = lint_source_unit(parse(_read(args.file)))
    for warning in warnings:
        print(warning)
    print(f"-- {len(warnings)} finding(s)")
    return 0 if not warnings else 2


def _cmd_analyze(args) -> int:
    """Corpus analysis: exit 2 on error findings, 1 on compile
    failures, 0 otherwise (warnings/infos are advisory)."""
    from .eval import (
        AnalysisTarget,
        analysis_report_to_json,
        analyze_targets,
        render_analysis_report,
        targets_from_files,
        targets_from_problems,
    )

    try:
        targets = targets_from_files(args.files)
    except OSError as exc:
        print(f"error: {exc}")
        return 2
    if args.top:
        targets = [
            AnalysisTarget(name=t.name, source=t.source, top=args.top)
            for t in targets
        ]
    if args.problems or args.variants:
        from .problems import ALL_PROBLEMS

        targets.extend(
            targets_from_problems(ALL_PROBLEMS, variants=args.variants)
        )
    if not targets:
        print("error: nothing to analyze (pass files and/or --problems)")
        return 2
    reports = analyze_targets(targets, workers=args.workers)
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(analysis_report_to_json(reports))
    if args.json:
        print(analysis_report_to_json(reports))
    else:
        print(render_analysis_report(reports))
    if any(r.compiled and r.error_findings for r in reports):
        return 2
    if any(not r.compiled for r in reports):
        return 1
    return 0


def _make_session(args, backend):
    """Build a Session for a resolved ``backend`` from the common
    executor/retry/batch/store flags (no ``--url`` interpretation —
    that is the caller's business: :func:`_session` reads it as a
    service-backend endpoint, ``work`` as the coordinator address)."""
    from .api import Session
    from .eval import RetryPolicy

    retry = None
    if getattr(args, "retries", 0):
        retry = RetryPolicy(
            max_attempts=args.retries + 1,
            backoff_seconds=getattr(args, "backoff", 0.0),
        )
    return Session(
        backend=backend,
        workers=args.workers,
        executor=getattr(args, "executor", "thread"),
        retry=retry,
        batch_size=getattr(args, "batch_size", 1),
        store=getattr(args, "store", None),
        repair_budget=getattr(args, "repair_budget", 0),
        analysis=not getattr(args, "no_analysis", False),
        compile_sim=getattr(args, "compile_sim", True),
    )


def _session(args, backend=None):
    """Build a Session from the common service flags.

    ``backend`` overrides ``--backend`` with a ready instance (the
    evaluate command's ad-hoc zoo); every other flag still applies.
    """
    from .backends import create_backend

    if getattr(args, "url", None):
        if backend is not None or args.backend not in ("service", "http"):
            print(f"error: --url does not apply to backend {args.backend!r}")
            raise SystemExit(2)
        backend = create_backend(args.backend, url=args.url)
    elif backend is None:
        backend = args.backend
    return _make_session(args, backend)


def _cmd_evaluate(args) -> int:
    from .backends import LocalZooBackend
    from .models import make_model
    from .problems import PromptLevel, get_problem

    if args.backend == "zoo":
        try:
            model = make_model(args.model, fine_tuned=args.ft)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}")
            return 2
        session = _session(args, backend=LocalZooBackend([model]))
        name = model.name
    else:
        session = _session(args)
        if args.ft:
            print("error: --ft only applies to the zoo backend")
            return 2
        served = session.models()
        if args.model in served:
            name = args.model
        elif args.model == _DEFAULT_EVAL_MODEL:
            # the zoo-oriented default isn't served here; fall back visibly
            name = served[0]
            print(f"-- evaluating {name} (backend {args.backend!r} default)")
        else:
            print(f"error: backend {args.backend!r} does not serve "
                  f"{args.model!r}; serves: {served}")
            return 2
    result = session.evaluate_model(
        name,
        temperature=args.temperature,
        n=args.n,
        levels=(PromptLevel.MEDIUM,),
    )
    total_pass = total = 0
    by_problem: dict[int, list] = {}
    for record in result.sweep.records:
        by_problem.setdefault(record.problem, []).append(record)
    for number, records in sorted(by_problem.items()):
        passes = sum(r.passed for r in records)
        total_pass += passes
        total += len(records)
        title = get_problem(number).title
        print(f"P{number:>2} {title:<40} {passes}/{len(records)}")
    for skip in result.skipped:
        print(f"-- skipped P{skip.problem}: {skip.reason}")
    for error in result.errors:
        print(f"-- failed P{error.job.problem}: {error.error}")
    if total:
        print(f"-- overall {total_pass}/{total} = {total_pass / total:.3f}")
    stats = result.stats
    print(
        f"-- backend={stats.get('backend', '?')} "
        f"workers={stats.get('workers', '?')} "
        f"cache={stats.get('evaluator_cache', {})}"
    )
    return 1 if result.errors else 0


def _parse_levels(text: str):
    from .problems import PromptLevel

    table = {"L": PromptLevel.LOW, "M": PromptLevel.MEDIUM,
             "H": PromptLevel.HIGH}
    return tuple(table[part.strip().upper()] for part in text.split(","))


def _build_sweep_config(args):
    """The SweepConfig described by the sweep-shaped flags, or ``None``
    after printing the error (callers return exit code 2)."""
    from .eval import SweepConfig
    from .problems import ALL_PROBLEMS

    defaults = SweepConfig()
    try:
        if args.levels:
            levels = _parse_levels(args.levels)
    except KeyError as exc:
        print(f"error: unknown level {exc.args[0]!r}; choose from L,M,H")
        return None
    try:
        config = SweepConfig(
            temperatures=tuple(float(t) for t in args.temperatures.split(","))
            if args.temperatures else defaults.temperatures,
            completions_per_prompt=tuple(int(n) for n in args.n.split(","))
            if args.n else defaults.completions_per_prompt,
            levels=levels if args.levels else defaults.levels,
            problem_numbers=tuple(int(p) for p in args.problems.split(","))
            if args.problems else defaults.problem_numbers,
            max_tokens=args.max_tokens,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return None
    known_problems = {p.number for p in ALL_PROBLEMS}
    unknown = sorted(set(config.problem_numbers) - known_problems)
    if unknown:
        print(f"error: unknown problem number(s) {unknown}; "
              f"valid: 1..{max(known_problems)}")
        return None
    return config


def _render_stream_event(frame: dict) -> None:
    """One human line per interesting stream frame (the live view).

    Observational frames (``metric``/``span``) and any future event
    types fall through silently — the live view only narrates progress.
    """
    event = frame["event"]
    if event == "job_started":
        print(f"  > job {frame['job_index']}: {frame['model']} "
              f"P{frame['problem']}", flush=True)
    elif event == "job_error":
        error = frame["error"]
        print(f"  ! job {frame['job_index']} failed "
              f"({error['job']['model']} P{error['job']['problem']}): "
              f"{error['error']}", flush=True)
    elif event == "attempt":
        stage = f" [{frame['stage']}]" if frame.get("stage") else ""
        print(f"  ~ repair {frame['model']} P{frame['problem']}"
              f"#{frame.get('sample_index', 0)} round {frame['round']}: "
              f"{frame['verdict']}{stage}", flush=True)
    elif event == "progress":
        print(f"  [{frame['jobs_done']}/{frame['jobs_total']}] "
              f"{frame['records']} records, {frame['errors']} errors",
              flush=True)


def _cmd_sweep_stream(args, config) -> int:
    """The ``sweep --stream`` path: consume a remote NDJSON sweep live."""
    from .backends import BackendError
    from .eval import save_sweep
    from .service import StreamProtocolError, stream_sweep

    # the sweep executes on the *server's* session; flags that configure
    # a local executor do not travel — say so instead of silently
    # dropping them (concurrency/batch-size do ship in the request)
    ignored = [
        flag
        for flag, is_set in (
            ("--retries", bool(args.retries)),
            ("--backoff", bool(getattr(args, "backoff", 0.0))),
            ("--store", args.store is not None),
            ("--executor", args.executor != "thread"),
            ("--backend", args.backend != "zoo"),
            ("--repair-budget", bool(getattr(args, "repair_budget", 0))),
        )
        if is_set
    ]
    if ignored:
        print(f"-- note: {', '.join(ignored)} configure a local session "
              f"and are ignored by --stream (the server's session "
              f"governs retry/store/executor)")
    models = args.models.split(",") if args.models else None
    try:
        result = stream_sweep(
            args.url,
            config=config,
            models=models,
            on_event=_render_stream_event,
            concurrency=args.workers if args.workers > 1 else None,
            batch_size=args.batch_size if args.batch_size > 1 else None,
        )
    except (BackendError, StreamProtocolError) as exc:
        print(f"error: {exc}")
        return 2
    for skip in result.skipped:
        print(
            f"  skipped {skip.model} P{skip.problem} {skip.level} "
            f"t={skip.temperature} n={skip.n}: {skip.reason}"
        )
    sweep = result.sweep
    rate = sweep.rate(sweep.records) if sweep.records else 0.0
    print(f"{len(sweep)} records, overall pass rate {rate:.3f}")
    stats = result.stats
    print(
        f"-- streamed from {args.url} backend={stats.get('backend', '?')} "
        f"concurrency={stats.get('concurrency', '?')} "
        f"elapsed={stats.get('elapsed_seconds', 0.0):.2f}s"
    )
    if args.export:
        save_sweep(sweep, args.export)
        print(f"-- wrote {args.export}")
    return 1 if result.errors else 0


def _cmd_sweep(args) -> int:
    from .backends import BackendError
    from .eval import save_sweep

    shard_mode = args.shard_index is not None
    if args.stream:
        if not args.url:
            print("error: --stream needs --url (an AsyncEvalService "
                  "endpoint from `repro serve --aio`)")
            return 2
        if shard_mode or args.shards > 1:
            print("error: --stream runs the whole plan server-side; "
                  "it does not combine with --shards")
            return 2
        if args.export and not args.export.endswith((".json", ".csv")):
            print(f"error: --export must end in .json or .csv, "
                  f"got {args.export!r}")
            return 2
        config = _build_sweep_config(args)
        if config is None:
            return 2
        return _cmd_sweep_stream(args, config)
    if args.export:
        if shard_mode and not args.export.endswith(".json"):
            print(f"error: with --shards, --export writes a mergeable "
                  f"shard result and must end in .json, got {args.export!r}")
            return 2
        if not args.export.endswith((".json", ".csv")):
            print(f"error: --export must end in .json or .csv, "
                  f"got {args.export!r}")
            return 2
    session = _session(args)
    config = _build_sweep_config(args)
    if config is None:
        return 2
    if shard_mode and not 0 <= args.shard_index < args.shards:
        print(f"error: --shard-index must be in 0..{args.shards - 1}")
        return 2
    if args.shards > 1 and not shard_mode:
        print("error: --shards needs --shard-index (run one shard per call)")
        return 2
    models = args.models.split(",") if args.models else None
    try:
        plan = session.plan(config, models=models)
    except BackendError as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"planned {len(plan.jobs)} jobs "
        f"({plan.completions_planned} completions), "
        f"{len(plan.skipped)} skipped"
    )
    shard = None
    if shard_mode:
        from .service import ShardPlanner

        shard = ShardPlanner(args.shards).split(plan)[args.shard_index]
        plan = shard.plan
        print(
            f"shard {shard.shard_index + 1}/{shard.num_shards}: "
            f"{len(plan.jobs)} jobs, {len(plan.skipped)} skips"
        )
    result = session.run_plan(plan)
    for skip in result.skipped:
        print(
            f"  skipped {skip.model} P{skip.problem} {skip.level} "
            f"t={skip.temperature} n={skip.n}: {skip.reason}"
        )
    for error in result.errors:
        job = error.job
        print(f"  failed {job.model} P{job.problem}: {error.error}")
    sweep = result.sweep
    rate = sweep.rate(sweep.records) if sweep.records else 0.0
    print(f"{len(sweep)} records, overall pass rate {rate:.3f}")
    stats = result.stats
    print(
        f"-- backend={stats.get('backend', '?')} "
        f"workers={stats.get('workers', '?')} "
        f"elapsed={stats.get('elapsed_seconds', 0.0):.2f}s "
        f"cache={stats.get('evaluator_cache', {})}"
    )
    if args.export:
        if shard is not None:
            from .service import save_shard_result

            save_shard_result(shard, result, args.export)
            print(f"-- wrote shard result {args.export} "
                  f"(merge with: python -m repro merge ...)")
        else:
            save_sweep(sweep, args.export)
            print(f"-- wrote {args.export}")
    return 1 if result.errors else 0


def _cmd_repair(args) -> int:
    """Run the same sweep at several repair budgets; print the curve."""
    from .backends import BackendError
    from .eval import save_sweep

    config = _build_sweep_config(args)
    if config is None:
        return 2
    try:
        budgets = tuple(int(part) for part in args.budgets.split(","))
    except ValueError:
        print(f"error: --budgets must be comma-separated integers, "
              f"got {args.budgets!r}")
        return 2
    if any(budget < 0 for budget in budgets):
        print("error: repair budgets must be >= 0")
        return 2
    if args.export and not args.export.endswith((".json", ".csv")):
        print(f"error: --export must end in .json or .csv, "
              f"got {args.export!r}")
        return 2
    session = _session(args)
    models = args.models.split(",") if args.models else None
    try:
        out = session.repair_curve(
            budgets=budgets, config=config, models=models, k=args.k
        )
    except BackendError as exc:
        print(f"error: {exc}")
        return 2
    header = f"pass@{args.k}"
    print(f"{'budget':>6} {'records':>8} {'compile':>8} {'pass':>8} "
          f"{header:>8} {'lift':>8}")
    for row in out["curve"]:
        print(f"{row['budget']:>6} {row['records']:>8} "
              f"{row['compile_rate']:>8.3f} {row['pass_rate']:>8.3f} "
              f"{row['pass_at_k']:>8.3f} {row['lift']:>+8.3f}")
    top = max(out["results"])
    stats = out["results"][top].stats
    print(f"-- backend={stats.get('backend', '?')} "
          f"workers={stats.get('workers', '?')} "
          f"cache={stats.get('evaluator_cache', {})}")
    if args.export:
        save_sweep(out["results"][top].sweep, args.export)
        print(f"-- wrote {args.export} (budget-{top} records)")
    errors = sum(len(result.errors) for result in out["results"].values())
    return 1 if errors else 0


def _cmd_merge(args) -> int:
    from .eval import save_sweep, save_sweep_result
    from .service import merge_shard_files

    try:
        result = merge_shard_files(args.files)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    sweep = result.sweep
    rate = sweep.rate(sweep.records) if sweep.records else 0.0
    stats = result.stats
    print(
        f"merged {stats['shards']} shards: {len(sweep)} records, "
        f"{stats['jobs_skipped']} skips, {stats['jobs_failed']} failures, "
        f"overall pass rate {rate:.3f}"
    )
    if args.export:
        if args.full:
            if not args.export.endswith(".json"):
                print("error: --full exports to .json only")
                return 2
            save_sweep_result(result, args.export)
        elif args.export.endswith((".json", ".csv")):
            save_sweep(sweep, args.export)
        else:
            print(f"error: --export must end in .json or .csv, "
                  f"got {args.export!r}")
            return 2
        print(f"-- wrote {args.export}")
    return 1 if result.errors else 0


def _cmd_serve(args) -> int:
    import time as _time

    session = _session(args)
    backend_name = session.backend.name
    if args.aio:
        from .service import AsyncEvalService

        service = AsyncEvalService(session, host=args.host, port=args.port)
        # the daemon-thread loop resolves port 0 and keeps this thread
        # free to catch Ctrl-C; streaming routes are live immediately
        url = service.start()
        print(f"async eval service on {url} (backend={backend_name}, "
              f"workers={args.workers}, +/sweep/stream) — Ctrl-C to stop")
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("\nstopped")
        finally:
            service.stop()
        return 0
    from .service import EvalService

    service = EvalService(session, host=args.host, port=args.port)
    service.bind()  # resolve port 0 before announcing the URL
    print(f"eval service on {service.url} (backend={backend_name}, "
          f"workers={args.workers}) — Ctrl-C to stop")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        service.stop()
    return 0


def _cmd_coordinate(args) -> int:
    import os as _os
    import time as _time

    from .eval import save_sweep

    config = _build_sweep_config(args)
    if config is None:
        return 2
    if args.shards is None and args.lease_jobs is None:
        print("error: coordinate needs --shards K and/or --lease-jobs N")
        return 2
    if args.export and not args.export.endswith((".json", ".csv")):
        print(f"error: --export must end in .json or .csv, "
              f"got {args.export!r}")
        return 2
    from .api import Session
    from .service import save_checkpoint

    session = Session(backend=args.backend)
    models = args.models.split(",") if args.models else None
    coordinator = None
    if args.checkpoint and _os.path.exists(args.checkpoint):
        from .service import load_checkpoint

        try:
            coordinator = load_checkpoint(args.checkpoint)
        except (OSError, KeyError, TypeError, ValueError) as exc:
            print(f"error: unreadable checkpoint {args.checkpoint}: {exc}")
            return 2
        # the checkpointed split wins over --shards, but lease timing is
        # a serving knob: the flag on *this* run governs future leases
        if args.lease_seconds > 0:
            coordinator.lease_seconds = args.lease_seconds
        restored = coordinator.status()
        print(f"resumed from {args.checkpoint}: "
              f"{restored['done']}/{restored['num_units']} units already "
              f"merged ({restored['records_merged']} records) — the "
              f"checkpointed split wins over --shards/--lease-jobs")
    if coordinator is None:
        from .service import ShardCoordinator

        coordinator = ShardCoordinator(
            session.plan_shards(args.shards or 1, config, models=models),
            lease_seconds=args.lease_seconds,
            lease_jobs=args.lease_jobs,
        )
    if args.aio:
        from .service import AsyncEvalService

        service = AsyncEvalService(
            session, host=args.host, port=args.port, coordinator=coordinator
        )
        service.start()  # daemon-thread loop; resolves port 0
    else:
        from .service import EvalService

        service = EvalService(
            session, host=args.host, port=args.port, coordinator=coordinator
        )
        service.bind()
    granularity = (
        f"{coordinator.num_units} job-range units "
        f"(<= {coordinator.lease_jobs} jobs each)"
        if coordinator.lease_jobs is not None
        else f"{coordinator.num_shards} shards"
    )
    print(f"shard coordinator on {service.url}: {granularity}, "
          f"lease {coordinator.lease_seconds:.0f}s — point workers at it with "
          f"`python -m repro work --url {service.url}`"
          + (" (live status: GET /shard/status/stream, streamed submit: "
             "POST /shard/result/stream)" if args.aio else ""))
    if not args.aio:
        service.start()
    checkpoint_last = coordinator.status()["done"]
    if args.checkpoint and not _os.path.exists(args.checkpoint):
        save_checkpoint(coordinator, args.checkpoint)  # resumable from t=0
    last_done = -1
    try:
        while not coordinator.done:
            status = coordinator.status()
            if status["done"] != last_done:
                last_done = status["done"]
                streaming = (
                    f", {status['records_streaming']} streaming in"
                    if status.get("records_streaming") else ""
                )
                print(f"  {status['done']}/{status['num_units']} units "
                      f"merged, {status['records_merged']} records"
                      f"{streaming} ({status['leased']} leased, "
                      f"{status['pending']} pending)")
            if (
                args.checkpoint
                and status["done"] - checkpoint_last >= args.checkpoint_every
            ):
                save_checkpoint(coordinator, args.checkpoint)
                checkpoint_last = status["done"]
            _time.sleep(args.poll_seconds)
        # keep answering /shard/next with done=true for a grace window,
        # so workers that were idle-polling exit cleanly instead of
        # hitting a vanished server
        if args.linger_seconds > 0:
            _time.sleep(args.linger_seconds)
    except KeyboardInterrupt:
        if args.checkpoint:
            save_checkpoint(coordinator, args.checkpoint)
            print(f"\ninterrupted; checkpoint saved to {args.checkpoint} "
                  f"— rerun with the same --checkpoint to resume")
        else:
            print("\ninterrupted; shards outstanding:",
                  coordinator.status()["pending"]
                  + coordinator.status()["leased"])
        return 130
    finally:
        service.stop()
    if args.checkpoint:
        save_checkpoint(coordinator, args.checkpoint)  # final: all done
    result = coordinator.result()
    sweep = result.sweep
    rate = sweep.rate(sweep.records) if sweep.records else 0.0
    stats = result.stats
    print(f"merged {stats['shards']} shards: {len(sweep)} records, "
          f"{stats['jobs_skipped']} skips, {stats['jobs_failed']} failures, "
          f"{stats['leases_reclaimed']} leases re-served, "
          f"overall pass rate {rate:.3f}")
    if args.export:
        save_sweep(sweep, args.export)
        print(f"-- wrote {args.export}")
    return 1 if result.errors else 0


def _cmd_work(args) -> int:
    from .backends import BackendError

    try:
        session = _make_session(args, args.backend)
        summary = session.work(
            url=args.url,
            worker_id=args.worker_id,
            poll_seconds=args.poll_seconds,
            max_idle_polls=args.max_idle_polls,
            aio=args.aio,
            max_leases=args.max_leases,
        )
    except BackendError as exc:
        print(f"error: {exc}")
        return 2
    except KeyboardInterrupt:
        print("\nworker stopped")
        return 130
    if summary["coordinator_gone"]:
        print("-- coordinator went away mid-poll (finished or shut down)")
    streamed = (f", {summary['streamed']} streamed submits"
                if summary.get("streamed") else "")
    print(f"worker {summary['worker_id']}: {summary['shards']} units, "
          f"{summary['jobs']} jobs, {summary['records']} records, "
          f"{summary['errors']} job errors{streamed}")
    return 0


def _cmd_tables(args) -> int:
    from .eval import (
        headline_numbers,
        render_headline,
        render_table3,
        render_table4,
        table3,
        table4,
    )

    session = _session(args)
    result = session.run_sweep()
    sweep = result.sweep
    print(render_table3(table3(sweep)))
    print()
    print(render_table4(table4(sweep)))
    print()
    print(render_headline(headline_numbers(sweep)))
    stats = result.stats
    print(
        f"-- backend={stats.get('backend', '?')} "
        f"workers={stats.get('workers', '?')} "
        f"jobs={stats.get('jobs', '?')} "
        f"skipped={stats.get('jobs_skipped', '?')} "
        f"cache={stats.get('evaluator_cache', {})}"
    )
    return 0


def _cmd_store(args) -> int:
    import os as _os

    from .eval import VerdictStore

    if not _os.path.isdir(args.dir):
        # even `info` must not conjure an empty store out of a typo'd
        # path (VerdictStore.__init__ creates its directory)
        print(f"error: {args.dir!r} is not a verdict store directory")
        return 2
    store = VerdictStore(args.dir)
    # the attached compiled-sim plan cache (simcache/) shares every
    # maintenance path; None when the store has never cached a plan
    sim_cache = store.sim_cache(create=False)
    if args.action == "pack":
        packed = store.pack()
        stats = store.stats()
        print(f"packed {packed} verdict file(s) into {store.pack_path} "
              f"({stats['entries']} entries total)")
        if sim_cache is not None:
            packed = sim_cache.pack()
            print(f"packed {packed} sim plan(s) into "
                  f"{sim_cache.pack_path} ({len(sim_cache)} plans total)")
    elif args.action == "compact":
        removed = store.compact()
        stats = store.stats()
        print(f"compacted {store.pack_path}: dropped {removed} dead "
              f"line(s) ({stats['packed']} packed entries remain)")
        if sim_cache is not None:
            removed = sim_cache.compact()
            print(f"compacted {sim_cache.pack_path}: dropped {removed} "
                  f"dead line(s)")
    elif args.action == "unpack":
        restored = store.unpack()
        print(f"unpacked {restored} verdict(s) back into {store.path} "
              f"({len(store)} entries total)")
        if sim_cache is not None:
            restored = sim_cache.unpack()
            print(f"unpacked {restored} sim plan(s) back into "
                  f"{sim_cache.path}")
    else:  # info
        stats = store.stats()
        print(f"store {store.path}: {stats['entries']} entries "
              f"({stats['files']} files, {stats['packed']} packed)")
        if sim_cache is not None:
            sim_stats = sim_cache.stats()
            print(f"simcache {sim_cache.path}: {sim_stats['entries']} "
                  f"plan(s) ({sim_stats['files']} files, "
                  f"{sim_stats['packed']} packed)")
    return 0


def _cmd_stats(args) -> int:
    """Summarize ``--trace`` NDJSON files: stages, workers, latency."""
    import json as _json

    from .obs import (
        TraceFormatError,
        expand_trace_paths,
        render_stats,
        summarize_traces,
    )

    try:
        summary = summarize_traces(expand_trace_paths(args.files))
    except (OSError, TraceFormatError) as exc:
        print(f"error: {exc}")
        return 2
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_stats(summary))
    return 0


def _cmd_hotspots(args) -> int:
    """Rank profiled simulator constructs by attributed wall time."""
    import json as _json

    from .obs import (
        TraceFormatError,
        expand_trace_paths,
        render_hotspots,
        summarize_traces,
    )

    if not 0.0 < args.coverage <= 1.0:
        print(f"error: --coverage must be in (0, 1], got {args.coverage}")
        return 2
    try:
        summary = summarize_traces(expand_trace_paths(args.files))
    except (OSError, TraceFormatError) as exc:
        print(f"error: {exc}")
        return 2
    if args.json:
        print(_json.dumps(summary.get("profile", {}), indent=2,
                          sort_keys=True))
    else:
        print(render_hotspots(summary, coverage=args.coverage))
    return 0


def _cmd_top(args) -> int:
    """Live terminal dashboard against a coordinator/service URL."""
    from .obs import run_top

    return run_top(args.url, interval=args.interval, once=args.once)


def _cmd_corpus(args) -> int:
    from .corpus import CorpusConfig, build_corpus

    corpus = build_corpus(
        CorpusConfig(repos=args.repos, include_textbooks=args.books)
    )
    for stage, count in corpus.stage_log:
        print(f"{stage:<18} {count}")
    stats = corpus.corpus.stats()
    print(f"files              {stats['files']}")
    print(f"bytes              {stats['bytes']}")
    print(f"dropped            {stats['dropped']}")
    print(f"by origin          {stats['by_origin']}")
    return 0


_DEFAULT_EVAL_MODEL = "codegen-16b"


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    from .backends import available_backends

    parser.add_argument(
        "--backend", default="zoo", choices=available_backends(),
        help="generation backend (default: the local simulated zoo)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="executor pool width (default: 1, serial)",
    )
    parser.add_argument(
        "--url", default=None,
        help="endpoint for the service/http backends "
             "(e.g. http://host:8076 from `repro serve`)",
    )
    parser.add_argument(
        "--executor", choices=("thread", "process", "async"),
        default="thread",
        help="worker pool flavour: thread (shared cache), process "
             "(GIL-free, for CPU-bound sweeps), or async (coroutine "
             "concurrency, for latency-bound remote backends)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="retry transient backend errors this many times per job",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.0,
        help="base backoff seconds between retries (doubles per attempt)",
    )
    parser.add_argument(
        "--store", default=None,
        help="directory for the shared on-disk verdict store "
             "(cross-process compile/simulate cache)",
    )
    parser.add_argument(
        "--repair-budget", type=int, default=0, metavar="N",
        help="agentic repair: give each failing sample up to N "
             "error-conditioned repair rounds before its final verdict "
             "(default: 0, no repair)",
    )
    parser.add_argument(
        "--compile-sim", action=argparse.BooleanOptionalAction,
        default=True,
        help="run bench simulations on the netlist→closure engine "
             "(default: on; --no-compile-sim restores the pure "
             "tree-walking interpreter — verdicts are identical either "
             "way)",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="append every span this run produces (jobs, stages, repair "
             "rounds, merged units) plus a final metrics snapshot to "
             "FILE as NDJSON; summarize with `python -m repro stats`",
    )


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="attribute simulator wall time and expression-eval counts "
             "to netlist constructs, appending per-problem profile "
             "frames to the trace (requires --trace; rank with "
             "`python -m repro hotspots`)",
    )


def _add_sweep_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--models", default=None,
                        help="comma-separated variant names "
                             "(default: all served)")
    parser.add_argument("--temperatures", default=None,
                        help="comma-separated floats (default: paper sweep)")
    parser.add_argument("--n", default=None,
                        help="comma-separated completions-per-prompt "
                             "(default: 10)")
    parser.add_argument("--levels", default=None,
                        help="comma-separated from L,M,H (default: all)")
    parser.add_argument("--problems", default=None,
                        help="comma-separated problem numbers "
                             "(default: all 17)")
    parser.add_argument("--max-tokens", type=int, default=300)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DATE 2023 Verilog-LLM benchmark",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("problems", help="list the benchmark problems")

    p = sub.add_parser("prompt", help="print a problem prompt")
    p.add_argument("number", type=int)
    p.add_argument("--level", choices=("L", "M", "H"), default="M")

    p = sub.add_parser("compile", help="compile a Verilog file")
    p.add_argument("file")
    p.add_argument("--top", default=None)

    p = sub.add_parser("simulate", help="compile and simulate a file")
    p.add_argument("file")
    p.add_argument("--top", default=None)
    p.add_argument("--max-time", type=int, default=1_000_000)
    p.add_argument("--compile-sim", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="run on the netlist→closure engine (default: on; "
                        "--no-compile-sim uses the tree-walking "
                        "interpreter — output is identical)")

    p = sub.add_parser("lint", help="run static lint checks on a file")
    p.add_argument("file")

    p = sub.add_parser(
        "analyze",
        help="netlist static analysis over files and/or the problem set",
    )
    p.add_argument("files", nargs="*",
                   help="Verilog files to analyze (top inferred unless "
                        "--top)")
    p.add_argument("--problems", action="store_true",
                   help="also analyze every canonical problem solution")
    p.add_argument("--variants", action="store_true",
                   help="with --problems, include the planted wrong "
                        "variants")
    p.add_argument("--top", default=None,
                   help="top module name for file targets "
                        "(default: inferred per file)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="thread-pool width for the corpus fan-out")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable JSON report")
    p.add_argument("--export", default=None,
                   help="also write the JSON report to this path")
    _add_trace_flag(p)

    p = sub.add_parser("evaluate", help="evaluate a model on the set")
    p.add_argument("--model", default=_DEFAULT_EVAL_MODEL)
    p.add_argument("--ft", action="store_true")
    p.add_argument("--n", type=int, default=10)
    p.add_argument("--temperature", type=float, default=0.1)
    _add_service_flags(p)

    p = sub.add_parser("sweep", help="run a configurable sweep via the job service")
    _add_sweep_config_flags(p)
    p.add_argument("--export", default=None,
                   help="write records to this .json or .csv path "
                        "(with --shards: a mergeable shard-result .json)")
    p.add_argument("--shards", type=_positive_int, default=1,
                   help="split the plan into this many deterministic shards")
    p.add_argument("--shard-index", type=int, default=None,
                   help="which shard to run (0-based; requires --shards)")
    p.add_argument("--batch-size", type=_positive_int, default=1,
                   help="consecutive same-model jobs per generate_batch call")
    p.add_argument("--stream", action="store_true",
                   help="run the sweep on a remote streaming service "
                        "(--url, from `repro serve --aio`) and render "
                        "progress live as NDJSON events arrive")
    p.add_argument("--no-analysis", action="store_true",
                   help="skip the netlist static-analysis gate "
                        "(pure compile+simulate verdicts)")
    _add_trace_flag(p)
    _add_profile_flag(p)
    _add_service_flags(p)

    p = sub.add_parser(
        "repair",
        help="run a sweep at several repair budgets; print pass@k vs budget",
    )
    _add_sweep_config_flags(p)
    p.add_argument("--budgets", default="0,1,2",
                   help="comma-separated repair budgets to sweep "
                        "(default: 0,1,2)")
    p.add_argument("--k", type=_positive_int, default=1,
                   help="k for the per-problem pass@k column (default: 1)")
    p.add_argument("--batch-size", type=_positive_int, default=1,
                   help="consecutive same-model jobs per generate_batch call")
    p.add_argument("--export", default=None,
                   help="write the highest-budget sweep's records to "
                        ".json/.csv")
    _add_trace_flag(p)
    _add_profile_flag(p)
    _add_service_flags(p)

    p = sub.add_parser("merge", help="merge executed shard-result files")
    p.add_argument("files", nargs="+",
                   help=".json files written by sweep --shards --export")
    p.add_argument("--export", default=None,
                   help="write merged records to .json/.csv")
    p.add_argument("--full", action="store_true",
                   help="export the full result (records+skips+errors) JSON")

    p = sub.add_parser("serve", help="expose the eval service over HTTP")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8076,
                   help="listening port (0 = pick a free one)")
    p.add_argument("--aio", action="store_true",
                   help="serve on the asyncio server, adding the NDJSON "
                        "streaming routes (POST /sweep/stream, "
                        "GET /shard/status/stream)")
    _add_service_flags(p)

    p = sub.add_parser(
        "coordinate",
        help="serve sweep shards to pull-based workers; merge as they land",
    )
    _add_sweep_config_flags(p)
    p.add_argument("--shards", type=_positive_int, default=None,
                   help="how many shards to split the plan into "
                        "(optional when --lease-jobs carves job ranges)")
    p.add_argument("--lease-jobs", type=_positive_int, default=None,
                   help="lease job ranges of at most N jobs instead of "
                        "whole shards — a straggling worker holds at "
                        "most N jobs hostage")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8076,
                   help="listening port (0 = pick a free one)")
    p.add_argument("--lease-seconds", type=float, default=300.0,
                   help="re-serve a shard if its worker goes this long "
                        "without submitting")
    p.add_argument("--poll-seconds", type=float, default=0.2,
                   help="progress-print poll interval")
    p.add_argument("--linger-seconds", type=float, default=2.0,
                   help="keep serving done-signals this long after the "
                        "merge completes so idle workers exit cleanly")
    p.add_argument("--export", default=None,
                   help="write the merged records to .json/.csv")
    p.add_argument("--checkpoint", default=None,
                   help="persist coordinator state to this file (atomic) "
                        "and resume from it if it already exists")
    p.add_argument("--checkpoint-every", type=_positive_int, default=1,
                   help="checkpoint after this many newly merged shards "
                        "(default: every shard)")
    p.add_argument("--aio", action="store_true",
                   help="serve the coordinator on the asyncio server so "
                        "GET /shard/status/stream observes it live")
    _add_trace_flag(p)
    # no executor/worker/store flags: the coordinator plans and serves
    # shards but never executes jobs — those belong on `repro work`
    from .backends import available_backends

    p.add_argument(
        "--backend", default="zoo", choices=available_backends(),
        help="backend whose capability claims drive sweep planning",
    )

    p = sub.add_parser(
        "work",
        help="pull and execute shards from a coordinator until done",
    )
    p.add_argument("--url", required=True,
                   help="coordinator URL (from `repro coordinate`)")
    p.add_argument("--backend", default="zoo",
                   help="local generation backend to execute shards with")
    p.add_argument("--workers", type=_positive_int, default=1)
    p.add_argument("--executor", choices=("thread", "process"),
                   default="thread")
    p.add_argument("--batch-size", type=_positive_int, default=1)
    p.add_argument("--retries", type=int, default=0)
    p.add_argument("--backoff", type=float, default=0.0)
    p.add_argument("--store", default=None,
                   help="shared on-disk verdict store directory")
    p.add_argument("--repair-budget", type=int, default=0, metavar="N",
                   help="agentic repair rounds per failing sample "
                        "(every worker of one sweep must use the same "
                        "value to keep merge parity)")
    p.add_argument("--worker-id", default=None,
                   help="name reported to the coordinator "
                        "(default: host-pid)")
    p.add_argument("--poll-seconds", type=float, default=0.5,
                   help="nap between polls when all shards are leased out")
    p.add_argument("--max-idle-polls", type=int, default=None,
                   help="give up after this many consecutive empty polls "
                        "(default: wait until done)")
    p.add_argument("--aio", action="store_true",
                   help="run the asyncio worker: up to --max-leases units "
                        "in flight on an async executor (--workers bounds "
                        "in-flight jobs per unit; --executor is ignored), "
                        "submitting over POST /shard/result/stream as jobs "
                        "finish when the coordinator supports it")
    p.add_argument("--max-leases", type=_positive_int, default=2,
                   help="leases held concurrently with --aio (default: 2)")
    _add_trace_flag(p)
    _add_profile_flag(p)

    p = sub.add_parser(
        "store",
        help="manage an on-disk verdict store (pack/compact/unpack/info)",
    )
    p.add_argument("action", choices=("pack", "compact", "unpack", "info"),
                   help="pack: fold verdict files into one JSONL; compact: "
                        "rewrite the pack without shadowed duplicate lines; "
                        "unpack: restore files; info: entry counts")
    p.add_argument("dir", help="verdict store directory (from --store)")

    p = sub.add_parser("tables", help="run the full sweep; print Tables III/IV")
    _add_service_flags(p)

    p = sub.add_parser(
        "stats",
        help="summarize --trace NDJSON files (stages, workers, latency)",
    )
    p.add_argument("files", nargs="+",
                   help="trace files written by sweep/work/coordinate "
                        "--trace (one per process; pass them all) — "
                        "directories and glob patterns expand to every "
                        ".trace/.ndjson inside")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON instead of tables")

    p = sub.add_parser(
        "hotspots",
        help="rank profiled simulator constructs by attributed time",
    )
    p.add_argument("files", nargs="+",
                   help="trace files with profile frames (from --trace "
                        "--profile); directories and globs expand")
    p.add_argument("--coverage", type=float, default=0.80, metavar="F",
                   help="rank constructs until this fraction of the "
                        "attributed time is covered (default: 0.80)")
    p.add_argument("--json", action="store_true",
                   help="emit the profile summary as JSON")

    p = sub.add_parser(
        "top",
        help="live terminal dashboard for a coordinator/service",
    )
    p.add_argument("--url", required=True,
                   help="service or coordinator URL (from `repro serve` "
                        "or `repro coordinate`)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh interval in seconds (default: 2)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (no screen clear)")

    p = sub.add_parser("corpus", help="build the training corpus")
    p.add_argument("--repos", type=int, default=60)
    p.add_argument("--books", action="store_true")

    return parser


_COMMANDS = {
    "problems": _cmd_problems,
    "prompt": _cmd_prompt,
    "compile": _cmd_compile,
    "simulate": _cmd_simulate,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "repair": _cmd_repair,
    "merge": _cmd_merge,
    "serve": _cmd_serve,
    "coordinate": _cmd_coordinate,
    "work": _cmd_work,
    "store": _cmd_store,
    "tables": _cmd_tables,
    "stats": _cmd_stats,
    "hotspots": _cmd_hotspots,
    "top": _cmd_top,
    "corpus": _cmd_corpus,
}


def _run_traced(args) -> int:
    """Run one command inside a :class:`~repro.obs.TraceWriter` sink."""
    import contextlib

    from .obs import TraceWriter, profiling

    tags = {"command": args.command}
    if args.command == "work":
        # resolve the worker id up front so every span in this file is
        # tagged with the same name the coordinator sees
        if not getattr(args, "worker_id", None):
            from .service.client import default_worker_id

            args.worker_id = default_worker_id()
        tags["worker"] = args.worker_id
    profiled = getattr(args, "profile", False)
    if profiled:
        tags["profiled"] = True
    profile_ctx = profiling() if profiled else contextlib.nullcontext()
    with TraceWriter(args.trace, tags=tags), profile_ctx:
        code = _COMMANDS[args.command](args)
    summarize = "hotspots" if profiled else "stats"
    print(f"-- wrote trace {args.trace} "
          f"(summarize with: python -m repro {summarize} {args.trace})")
    return code


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", False) and not getattr(args, "trace", None):
        print("error: --profile needs --trace FILE (profile frames are "
              "recorded into the trace)")
        return 2
    if getattr(args, "trace", None):
        return _run_traced(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
