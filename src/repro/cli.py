"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``problems`` — list the 17-problem benchmark set (Table II);
* ``prompt N [--level L|M|H]`` — print one problem's prompt;
* ``compile FILE`` — compile a Verilog file with the built-in frontend;
* ``simulate FILE [--top NAME]`` — compile and simulate, print output;
* ``lint FILE`` — run the static lint checks;
* ``evaluate [--model NAME] [--ft] [--n N] [--temperature T]`` — query a
  zoo model on the whole problem set and print per-problem verdicts;
* ``tables`` — run the full sweep and print Tables III/IV + headlines;
* ``corpus [--repos N] [--books]`` — build the training corpus, print stats.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_problems(_args) -> int:
    from .problems import ALL_PROBLEMS

    for problem in ALL_PROBLEMS:
        print(f"{problem.number:>2}  [{problem.difficulty}]  {problem.title}")
    return 0


def _cmd_prompt(args) -> int:
    from .problems import PromptLevel, get_problem

    level = {"L": PromptLevel.LOW, "M": PromptLevel.MEDIUM,
             "H": PromptLevel.HIGH}[args.level]
    print(get_problem(args.number).prompt(level), end="")
    return 0


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_compile(args) -> int:
    from .verilog import compile_design

    report = compile_design(_read(args.file), top=args.top)
    if report.ok:
        print("compile: OK")
        return 0
    print("compile: FAILED")
    print(report.error_text)
    return 1


def _cmd_simulate(args) -> int:
    from .verilog import run_simulation

    report, result = run_simulation(
        _read(args.file), top=args.top, max_time=args.max_time
    )
    if not report.ok:
        print("compile: FAILED")
        print(report.error_text)
        return 1
    if result is None:
        print("simulation: RUNTIME ERROR")
        print(report.error_text)
        return 1
    print(result.text)
    print(f"-- finished={result.finished} at t={result.time}")
    if result.vcd is not None and result.vcd_file:
        result.vcd.write(result.vcd_file, top=args.top or "top")
        print(f"-- wrote {result.vcd_file}")
    return 0


def _cmd_lint(args) -> int:
    from .verilog import lint_source_unit, parse

    warnings = lint_source_unit(parse(_read(args.file)))
    for warning in warnings:
        print(warning)
    print(f"-- {len(warnings)} finding(s)")
    return 0 if not warnings else 2


def _cmd_evaluate(args) -> int:
    from .eval import Evaluator
    from .models import GenerationConfig, make_model
    from .problems import ALL_PROBLEMS, PromptLevel

    model = make_model(args.model, fine_tuned=args.ft)
    evaluator = Evaluator()
    config = GenerationConfig(temperature=args.temperature, n=args.n)
    total_pass = total = 0
    for problem in ALL_PROBLEMS:
        completions = model.generate(problem.prompt(PromptLevel.MEDIUM), config)
        passes = sum(
            evaluator.evaluate(problem, c.text).passed for c in completions
        )
        total_pass += passes
        total += len(completions)
        print(f"P{problem.number:>2} {problem.title:<40} {passes}/{len(completions)}")
    print(f"-- overall {total_pass}/{total} = {total_pass / total:.3f}")
    return 0


def _cmd_tables(_args) -> int:
    from .eval import (
        Evaluator,
        SweepConfig,
        headline_numbers,
        render_headline,
        render_table3,
        render_table4,
        run_sweep,
        table3,
        table4,
    )
    from .models import paper_model_variants

    sweep = run_sweep(paper_model_variants(), SweepConfig(), Evaluator())
    print(render_table3(table3(sweep)))
    print()
    print(render_table4(table4(sweep)))
    print()
    print(render_headline(headline_numbers(sweep)))
    return 0


def _cmd_corpus(args) -> int:
    from .corpus import CorpusConfig, build_corpus

    corpus = build_corpus(
        CorpusConfig(repos=args.repos, include_textbooks=args.books)
    )
    for stage, count in corpus.stage_log:
        print(f"{stage:<18} {count}")
    stats = corpus.corpus.stats()
    print(f"files              {stats['files']}")
    print(f"bytes              {stats['bytes']}")
    print(f"dropped            {stats['dropped']}")
    print(f"by origin          {stats['by_origin']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DATE 2023 Verilog-LLM benchmark",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("problems", help="list the benchmark problems")

    p = sub.add_parser("prompt", help="print a problem prompt")
    p.add_argument("number", type=int)
    p.add_argument("--level", choices=("L", "M", "H"), default="M")

    p = sub.add_parser("compile", help="compile a Verilog file")
    p.add_argument("file")
    p.add_argument("--top", default=None)

    p = sub.add_parser("simulate", help="compile and simulate a file")
    p.add_argument("file")
    p.add_argument("--top", default=None)
    p.add_argument("--max-time", type=int, default=1_000_000)

    p = sub.add_parser("lint", help="run static lint checks on a file")
    p.add_argument("file")

    p = sub.add_parser("evaluate", help="evaluate a zoo model on the set")
    p.add_argument("--model", default="codegen-16b")
    p.add_argument("--ft", action="store_true")
    p.add_argument("--n", type=int, default=10)
    p.add_argument("--temperature", type=float, default=0.1)

    sub.add_parser("tables", help="run the full sweep; print Tables III/IV")

    p = sub.add_parser("corpus", help="build the training corpus")
    p.add_argument("--repos", type=int, default=60)
    p.add_argument("--books", action="store_true")

    return parser


_COMMANDS = {
    "problems": _cmd_problems,
    "prompt": _cmd_prompt,
    "compile": _cmd_compile,
    "simulate": _cmd_simulate,
    "lint": _cmd_lint,
    "evaluate": _cmd_evaluate,
    "tables": _cmd_tables,
    "corpus": _cmd_corpus,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
