"""Stable top-level service facade for generation and evaluation.

The one import most users need::

    from repro.api import Session

    session = Session(backend="zoo", workers=4)
    result = session.run_sweep()          # SweepResult
    print(result.stats, len(result.skipped))

A :class:`Session` binds a backend (by name or instance), a shared
thread-safe evaluator and a worker count, then serves sweeps and
single-model evaluations through the job planner/executor of
:mod:`repro.eval.jobs`.  The legacy entrypoints
(:func:`repro.eval.run_sweep`, :func:`repro.quick_evaluate`,
``VGenPipeline``) are thin shims over this module.
"""

from __future__ import annotations

from typing import Sequence

from .backends import Backend, LocalZooBackend, resolve_backend
from .eval.harness import Sweep, SweepConfig
from .eval.jobs import (
    Executor,
    ProgressCallback,
    RetryPolicy,
    SweepExecutor,
    SweepPlan,
    SweepPlanner,
    SweepResult,
    execute_sweep,
)
from .eval.pipeline import Evaluator
from .eval.store import resolve_store
from .models.base import Completion, GenerationConfig, LanguageModel

EXECUTORS = ("thread", "process", "async")


class Session:
    """A configured generation/evaluation service handle.

    Parameters
    ----------
    backend:
        A :class:`~repro.backends.Backend` instance, a registered
        backend name (``"zoo"``, ``"stub"``, ``"http"``, ...), or
        ``None`` for the default local zoo.
    evaluator:
        Shared across every run of this session, so verdict caching
        accumulates between calls.
    workers:
        Worker-pool width for sweep execution (1 = serial).
    executor:
        ``"thread"`` (default; shared evaluator cache, GIL-bound),
        ``"process"`` (worker processes — real parallelism for
        CPU-bound sweeps; the backend must pickle), or ``"async"``
        (coroutine concurrency in one thread — the fit for
        latency-bound remote backends; ``workers`` becomes the
        in-flight bound).
    retry:
        A :class:`~repro.eval.jobs.RetryPolicy` for transient backend
        failures (``None`` = no retries).
    batch_size:
        Consecutive same-model jobs grouped into one
        ``generate_batch`` call (thread executor only).
    store:
        A :class:`~repro.eval.store.VerdictStore` (or a directory path)
        shared across processes and runs: verdicts persist to disk, so
        process-pool workers, coordinator workers and later sessions
        skip re-compiling completions any of them has seen before.
    repair_budget:
        When > 0, the session's backend is wrapped in a
        :class:`~repro.agentic.RepairingBackend`: every failing sample
        gets up to this many error-conditioned repair rounds (the
        agentic generate → test → repair loop) before its final verdict.
        Everything downstream — executors, sharding, streaming — is
        unchanged; the sweep simply sees the post-repair completions.
    repair:
        A full :class:`~repro.agentic.RepairConfig` when the defaults
        (feedback length, lint hints) need tuning; its ``budget`` wins
        over ``repair_budget``.
    analysis:
        Run the netlist static-analysis gate inside the evaluator
        (default True); only consulted when ``evaluator`` is None —
        an explicit evaluator brings its own setting.
    compile_sim:
        Run bench simulations on the netlist→closure engine
        (:mod:`repro.verilog.codegen`; default True).  Verdicts are
        identical to the interpreter's, so the flag is purely a speed
        switch; like ``analysis`` it is only consulted when
        ``evaluator`` is None.
    """

    def __init__(
        self,
        backend: Backend | str | None = None,
        evaluator: Evaluator | None = None,
        workers: int = 1,
        progress: ProgressCallback | None = None,
        executor: str = "thread",
        retry: RetryPolicy | None = None,
        batch_size: int = 1,
        store=None,
        repair_budget: int = 0,
        repair=None,
        analysis: bool = True,
        compile_sim: bool = True,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        self.backend = resolve_backend(backend)
        self.store = resolve_store(store)
        if evaluator is None:
            evaluator = Evaluator(store=self.store, analysis=analysis,
                                  compile_sim=compile_sim)
        elif self.store is not None and evaluator.store is None:
            evaluator.store = self.store
        self.evaluator = evaluator
        if repair is None and repair_budget > 0:
            from .agentic import RepairConfig

            repair = RepairConfig(budget=repair_budget)
        self.repair = repair
        if repair is not None and repair.budget > 0:
            from .agentic import RepairingBackend

            self.backend = RepairingBackend(
                self.backend,
                repair=repair,
                evaluator=self.evaluator,
                store=self.store,
            )
        self.workers = workers
        self.progress = progress
        self.executor = executor
        self.retry = retry
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        """Model variants the session's backend serves."""
        return self.backend.models()

    def generate(
        self,
        model: str,
        prompt: str,
        temperature: float = 0.1,
        n: int = 10,
        max_tokens: int = 300,
    ) -> list[Completion]:
        """Raw completions for one prompt (no evaluation)."""
        config = GenerationConfig(
            temperature=temperature, n=n, max_tokens=max_tokens
        )
        return self.backend.generate(model, prompt, config)

    def plan(
        self,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
    ) -> SweepPlan:
        """Expand a sweep into jobs without running it."""
        return SweepPlanner(self.backend).plan(config, models=models)

    def make_executor(self, backend: Backend | None = None) -> Executor:
        """The executor this session is configured for.

        ``backend`` overrides the session backend for this executor
        only (used by :meth:`repair_curve` to run the same sweep at
        several repair budgets).
        """
        backend = backend if backend is not None else self.backend
        if self.executor == "process":
            from .service.process import ProcessPoolSweepExecutor

            return ProcessPoolSweepExecutor(
                backend,
                workers=self.workers,
                retry=self.retry,
                progress=self.progress,
                store=self.store,
                analysis=self.evaluator.analysis,
                compile_sim=self.evaluator.compile_sim,
            )
        if self.executor == "async":
            from .service.aio import AsyncSweepExecutor

            return AsyncSweepExecutor(
                backend,
                evaluator=self.evaluator,
                concurrency=self.workers,
                progress=self.progress,
                retry=self.retry,
                batch_size=self.batch_size,
            )
        return SweepExecutor(
            backend,
            evaluator=self.evaluator,
            workers=self.workers,
            progress=self.progress,
            retry=self.retry,
            batch_size=self.batch_size,
        )

    def run_plan(self, plan: SweepPlan) -> SweepResult:
        """Execute a previously built plan."""
        return self.make_executor().run(plan)

    def run_sweep(
        self,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
    ) -> SweepResult:
        """Plan and execute a full sweep (Fig. 1) on this session."""
        return self.run_plan(self.plan(config, models=models))

    def evaluate_model(
        self,
        model: str | LanguageModel,
        problem_numbers: tuple[int, ...] | None = None,
        temperature: float = 0.1,
        n: int = 10,
        levels: tuple | None = None,
    ) -> SweepResult:
        """One model at one temperature over selected problems.

        ``model`` is a served model name, or a bare
        :class:`LanguageModel` instance (evaluated through a one-off
        local-zoo backend regardless of the session backend).
        """
        config = SweepConfig(
            temperatures=(temperature,),
            completions_per_prompt=(n,),
            problem_numbers=problem_numbers or SweepConfig().problem_numbers,
            levels=levels or SweepConfig().levels,
        )
        if isinstance(model, LanguageModel):
            return execute_sweep(
                LocalZooBackend([model]),
                config=config,
                evaluator=self.evaluator,
                workers=self.workers,
                progress=self.progress,
            )
        return self.run_sweep(config, models=[model])

    def repair_curve(
        self,
        budgets: Sequence[int] = (0, 1, 2),
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
        k: int = 1,
    ) -> dict:
        """Run the same sweep at each repair budget; report the curve.

        The agentic workload's headline: pass@k *versus repair budget*.
        Each budget runs one full sweep over the session's raw backend
        (budget 0 = no repair loop at all), all sharing this session's
        evaluator and verdict store, so later budgets reuse cached
        verdicts for every first-round completion.  Returns::

            {"results": {budget: SweepResult, ...},
             "curve":   [{"budget", "k", "records", "pass_rate",
                          "compile_rate", "pass_at_k", "lift",
                          "lift_per_budget"}, ...]}
        """
        from .agentic import RepairConfig, RepairingBackend
        from .eval.metrics import repair_budget_curve

        raw = getattr(self.backend, "inner", self.backend)
        results: dict[int, SweepResult] = {}
        for budget in sorted(set(int(b) for b in budgets)):
            if budget < 0:
                raise ValueError("repair budgets must be >= 0")
            if budget == 0:
                backend = raw
            else:
                base = self.repair or RepairConfig()
                backend = RepairingBackend(
                    raw,
                    repair=RepairConfig(
                        budget=budget,
                        max_feedback_errors=base.max_feedback_errors,
                        include_lint=base.include_lint,
                    ),
                    evaluator=self.evaluator,
                    store=self.store,
                )
            plan = SweepPlanner(backend).plan(config, models=models)
            results[budget] = self.make_executor(backend).run(plan)
        curve = repair_budget_curve(
            {budget: result.sweep.records
             for budget, result in results.items()},
            k=k,
        )
        return {"results": results, "curve": curve}

    # ------------------------------------------------------------------
    # Distributed entrypoints (repro.service)
    # ------------------------------------------------------------------
    def serve(self, host: str = "127.0.0.1", port: int = 8076):
        """An :class:`~repro.service.server.EvalService` over this session.

        Not yet listening: call ``start()`` (background thread) or
        ``serve_forever()`` (blocking, the CLI path) on the result.
        """
        from .service.server import EvalService

        return EvalService(self, host=host, port=port)

    def serve_async(self, host: str = "127.0.0.1", port: int = 8076):
        """An :class:`~repro.service.aio.server.AsyncEvalService` over
        this session: the same JSON routes as :meth:`serve` plus the
        NDJSON streaming ones (``POST /sweep/stream``,
        ``GET /shard/status/stream``).  Not yet listening — use
        ``start()``/``stop()`` (daemon thread), ``serve_forever()``
        (blocking), or ``start_async()`` inside an event loop.
        """
        from .service.aio import AsyncEvalService

        return AsyncEvalService(self, host=host, port=port)

    def stream_sweep(
        self,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
        url: str | None = None,
        on_event=None,
        concurrency: int | None = None,
        timeout: float = 300.0,
    ) -> SweepResult:
        """Run a sweep on a remote streaming service, observing it live.

        ``url`` names the :class:`AsyncEvalService` endpoint; when the
        session's backend is already a service client, its URL is the
        default.  Every event frame is forwarded to ``on_event`` as it
        arrives; the return value is the losslessly reassembled
        :class:`~repro.eval.jobs.SweepResult` (exact record parity with
        a serial run of the same plan server-side).
        """
        if url is None:
            url = getattr(self.backend, "url", None)
            if url is None:
                raise ValueError(
                    "stream_sweep needs a service url (or a session "
                    "backend that carries one, e.g. backend='service')"
                )
        from .service.aio import stream_sweep

        return stream_sweep(
            url,
            config=config,
            models=models,
            on_event=on_event,
            concurrency=concurrency,
            batch_size=self.batch_size if self.batch_size > 1 else None,
            timeout=timeout,
        )

    def plan_shards(
        self,
        num_shards: int,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
    ):
        """Plan a sweep and split it into ``num_shards`` deterministic
        shards (see :mod:`repro.service.sharding`); run one with
        :meth:`run_plan` on ``shard.plan``, merge with
        :func:`~repro.service.sharding.merge_shard_results`."""
        from .service.sharding import ShardPlanner

        return ShardPlanner(num_shards).split(self.plan(config, models=models))

    def coordinate(
        self,
        num_shards: int,
        config: SweepConfig | None = None,
        models: Sequence[str] | None = None,
        host: str = "127.0.0.1",
        port: int = 8076,
        lease_seconds: float = 300.0,
        lease_jobs: int | None = None,
    ):
        """Plan a sweep, split it, and serve the shards to pull workers.

        Returns an :class:`~repro.service.server.EvalService` whose app
        carries a :class:`~repro.service.coordinator.ShardCoordinator`
        (reachable as ``service.coordinator``).  Not yet listening —
        call ``start()``/``serve_forever()``; point workers at the URL
        with :meth:`work` (or ``python -m repro work --url ...``), and
        read the streamed-merge result from
        ``service.coordinator.result()`` once ``coordinator.done``.

        ``lease_jobs=N`` switches to job-granular leasing: workers
        lease consecutive ranges of at most N jobs instead of whole
        shards, so one straggler re-balances finely.
        """
        from .service.coordinator import ShardCoordinator
        from .service.server import EvalService

        coordinator = ShardCoordinator(
            self.plan_shards(num_shards, config, models=models),
            lease_seconds=lease_seconds,
            lease_jobs=lease_jobs,
        )
        return EvalService(self, host=host, port=port, coordinator=coordinator)

    def work(
        self,
        url: str | None = None,
        transport=None,
        worker_id: str | None = None,
        poll_seconds: float = 0.5,
        max_idle_polls: int | None = None,
        aio: bool = False,
        max_leases: int = 2,
    ) -> dict:
        """Serve a coordinator as a pull-based worker until it is done.

        Work units execute on *this* session's configuration (backend,
        executor, workers, retry, batch size, verdict store); returns
        the worker summary dict from
        :func:`~repro.service.client.run_worker`.

        ``aio=True`` runs the asyncio worker instead
        (:func:`~repro.service.aio.client.run_worker_async`): up to
        ``max_leases`` units in flight on an async executor (the
        session's ``workers`` bounds in-flight jobs per unit), each
        submitted over the streamed-upload route when the coordinator
        supports it.  Must be called from sync code — inside a running
        event loop, await ``run_worker_async`` directly.
        """
        if aio:
            import asyncio

            from .service.aio.client import run_worker_async

            if url is None:
                raise ValueError("work(aio=True) needs a coordinator url")
            return asyncio.run(
                run_worker_async(
                    url,
                    session=self,
                    worker_id=worker_id,
                    max_leases=max_leases,
                    poll_seconds=poll_seconds,
                    max_idle_polls=max_idle_polls,
                )
            )
        from .service.client import run_worker

        return run_worker(
            url=url,
            transport=transport,
            session=self,
            worker_id=worker_id,
            poll_seconds=poll_seconds,
            max_idle_polls=max_idle_polls,
        )

    # ------------------------------------------------------------------
    @property
    def cache_info(self) -> dict:
        """The shared evaluator's cache statistics."""
        return self.evaluator.cache_info

    @property
    def metrics(self) -> list[dict]:
        """A snapshot of the process :mod:`repro.obs` registry — the
        same rows ``GET /metrics`` serves (stage timings, job latency,
        cache hit counters accumulate across everything this process
        ran, not just this session)."""
        from .obs import REGISTRY

        return REGISTRY.snapshot()

    def __repr__(self) -> str:
        return (
            f"Session(backend={self.backend.name!r}, "
            f"executor={self.executor!r}, workers={self.workers})"
        )


# ----------------------------------------------------------------------
# Module-level conveniences (one-shot sessions)
# ----------------------------------------------------------------------
def run_sweep(
    config: SweepConfig | None = None,
    *,
    backend: Backend | str | None = None,
    models: Sequence[str] | list[LanguageModel] | None = None,
    evaluator: Evaluator | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
    executor: str = "thread",
    retry: RetryPolicy | None = None,
    batch_size: int = 1,
    store=None,
) -> SweepResult:
    """One-shot sweep; ``models`` may be names or LanguageModel instances."""
    if models and not isinstance(models[0], str):
        backend = LocalZooBackend(list(models))
        models = [m.name for m in models]
    session = Session(
        backend=backend,
        evaluator=evaluator,
        workers=workers,
        progress=progress,
        executor=executor,
        retry=retry,
        batch_size=batch_size,
        store=store,
    )
    return session.run_sweep(config, models=models)


def evaluate_model(
    model: str | LanguageModel,
    problem_numbers: tuple[int, ...] | None = None,
    temperature: float = 0.1,
    n: int = 10,
    *,
    backend: Backend | str | None = None,
    evaluator: Evaluator | None = None,
    workers: int = 1,
) -> SweepResult:
    """One-shot single-model evaluation (see :meth:`Session.evaluate_model`)."""
    if isinstance(model, LanguageModel) and backend is None:
        backend = LocalZooBackend([model])
        model = model.name
    session = Session(backend=backend, evaluator=evaluator, workers=workers)
    return session.evaluate_model(
        model, problem_numbers=problem_numbers, temperature=temperature, n=n
    )


__all__ = [
    "EXECUTORS",
    "RetryPolicy",
    "Session",
    "Sweep",
    "SweepConfig",
    "SweepResult",
    "evaluate_model",
    "run_sweep",
]
