#!/usr/bin/env python3
"""Reproduce the paper's evaluation (Tables III/IV, Figs. 6/7) end to end.

Runs the full experimental sweep of Fig. 1: all eleven model variants
(five fine-tuned + six pre-trained) x 17 problems x 3 prompt levels x
5 temperatures x n=10 completions, evaluates every completion with the
compile gate and test benches, and prints the paper's tables with the
published values alongside.

Run:  python examples/evaluate_model_zoo.py        (~30 s)
"""

import os

from repro.api import Session
from repro.eval import (
    fig6_temperature,
    fig7_difficulty,
    fig7_levels,
    headline_numbers,
    per_problem_pass_counts,
    render_headline,
    render_series,
    render_table3,
    render_table4,
    table3,
    table4,
)
from repro.problems import get_problem


def main() -> None:
    session = Session(backend="zoo", workers=os.cpu_count() or 1)
    print(f"evaluating {len(session.models())} model variants: "
          + ", ".join(session.models()))
    result = session.run_sweep()
    sweep = result.sweep
    stats = result.stats
    print(
        f"{len(sweep)} completions evaluated in "
        f"{stats['elapsed_seconds']:.1f}s across {stats['workers']} workers "
        f"({stats['jobs']} jobs, {stats['jobs_skipped']} skipped; "
        f"cache: {stats['evaluator_cache']})\n"
    )

    print(render_table3(table3(sweep)))
    print()
    print(render_table4(table4(sweep)))
    print()
    print(render_series(
        "Fig. 6 (left) — Pass@(scenario*10) vs temperature",
        fig6_temperature(sweep),
    ))
    print()
    print(render_series(
        "Fig. 7 (left) — Pass@(scenario*10) vs description level",
        fig7_levels(sweep), x_format=str,
    ))
    print()
    print(render_series(
        "Fig. 7 (right) — Pass@(scenario*10) vs difficulty",
        fig7_difficulty(sweep), x_format=str,
    ))
    print()
    print(render_headline(headline_numbers(sweep)))
    print()

    print("Sec. VI failure analysis — CodeGen-16B FT, passes per problem:")
    for number, (passes, total) in per_problem_pass_counts(
        sweep, "codegen-16b-ft"
    ).items():
        title = get_problem(number).title
        marker = "  <- hard (paper: ~0 passes)" if number in (7, 9, 12) else ""
        print(f"  P{number:>2} {title:<38} {passes:>4}/{total}{marker}")


if __name__ == "__main__":
    main()
