#!/usr/bin/env python3
"""Grading LLM 'skeletons' beyond pass/fail: lint + waveforms.

The paper's discussion proposes that "a designer may use these LLMs ...
to generate a syntactically-correct 'skeleton' of a design, before then
tweaking it to meet functional requirements."  This example does the
designer's triage on real completions:

1. generate n completions for a problem;
2. bucket them with the evaluation pipeline (pass / test-fail / no-compile);
3. run the static linter over the compiling-but-wrong skeletons to show
   what a designer would need to fix;
4. dump a VCD waveform of a failing candidate next to the reference.

Run:  python examples/skeleton_quality.py
"""

from repro.eval import Evaluator
from repro.eval.truncate import truncate_completion
from repro.models import GenerationConfig, make_model
from repro.problems import PromptLevel, get_problem
from repro.verilog import lint_source_unit, parse, run_simulation


def main() -> None:
    problem = get_problem(15)  # the '101' FSM
    model = make_model("codegen-16b", fine_tuned=True)
    evaluator = Evaluator()
    completions = model.generate(
        problem.prompt(PromptLevel.HIGH),
        GenerationConfig(temperature=0.3, n=12),
    )

    print(f"problem: {problem}")
    buckets = {"pass": [], "test-fail": [], "compile-error": []}
    for completion in completions:
        verdict = evaluator.evaluate(problem, completion.text).verdict
        buckets[verdict].append(completion.text)
    for verdict, items in buckets.items():
        print(f"  {verdict:<14} {len(items)}")

    print("\nlint findings on compiling-but-wrong skeletons:")
    seen = set()
    for text in buckets["test-fail"]:
        source = problem.full_source(truncate_completion(text))
        if source in seen:
            continue
        seen.add(source)
        warnings = lint_source_unit(parse(source))
        label = "clean" if not warnings else f"{len(warnings)} finding(s)"
        print(f"  skeleton #{len(seen)}: {label}")
        for warning in warnings[:4]:
            print(f"    {warning}")

    print("\nwaveform of a failing candidate (first 25 VCD lines):")
    failing = buckets["test-fail"] or buckets["pass"]
    source = problem.bench_source(truncate_completion(failing[0]))
    # inject $dumpvars at the start of the bench's initial block
    source = source.replace("errors = 0;", "$dumpvars;\n    errors = 0;", 1)
    report, result = run_simulation(source, top="tb")
    assert report.ok and result is not None
    if result.vcd is not None:
        for line in result.vcd.text("tb").splitlines()[:25]:
            print(f"  {line}")
        print(f"  ... ({result.vcd.change_count} value changes recorded)")


if __name__ == "__main__":
    main()
