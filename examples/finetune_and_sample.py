#!/usr/bin/env python3
"""Fine-tune the real trainable substrates on the Verilog corpus.

This is the paper's Sec. III pipeline executed for real at CPU scale:
build the training corpus (GitHub gather -> MinHash dedup -> filters),
train the BPE tokenizer, then fine-tune both trainable models — the
n-gram LM and the tiny numpy transformer — and sample Verilog from each.

Run:  python examples/finetune_and_sample.py
"""

from repro.corpus import CorpusConfig, build_github_corpus
from repro.models import (
    GenerationConfig,
    finetune_ngram,
    finetune_transformer,
    train_tokenizer,
)
from repro.verilog import check_syntax

HOLDOUT = (
    "module counter(input clk, input rst, output reg [3:0] q);\n"
    "  always @(posedge clk) begin\n"
    "    if (rst) q <= 4'd0;\n"
)


def main() -> None:
    print("building the GitHub training corpus (paper Sec. III-A)...")
    corpus = build_github_corpus(CorpusConfig(repos=60))
    for stage, count in corpus.stage_log:
        print(f"  {stage:<16} {count} files")
    stats = corpus.corpus.stats()
    print(f"  final corpus: {stats['files']} files, {stats['bytes']} bytes")
    print(f"  dropped: {stats['dropped']}")

    print("\ntraining the BPE tokenizer...")
    tokenizer = train_tokenizer(corpus, vocab_size=640)
    sample = "always @(posedge clk) q <= q + 1;"
    ratio = len(sample) / max(1, len(tokenizer.encode(sample)))
    print(f"  vocab {tokenizer.vocab_size}, {ratio:.1f} chars/token on RTL")

    print("\nfine-tuning the n-gram LM (paper Sec. III-C at CPU scale)...")
    ngram, report = finetune_ngram(corpus, tokenizer=tokenizer, holdout=HOLDOUT)
    print(
        f"  {report.wall_seconds:.1f}s, held-out perplexity "
        f"{report.perplexity_before:.1f} -> {report.perplexity_after:.1f}"
    )

    print("\nfine-tuning the tiny transformer (Adam, real backprop)...")
    transformer, t_report = finetune_transformer(
        corpus, tokenizer=tokenizer, steps=60, lr=2e-3
    )
    print(
        f"  {t_report.wall_seconds:.1f}s, loss "
        f"{t_report.losses[0]:.2f} -> {t_report.losses[-1]:.2f} "
        f"({transformer.parameter_count} parameters)"
    )

    print("\nsampling 3 completions from each model at t=0.5:")
    prompt = "module "
    config = GenerationConfig(temperature=0.5, n=3, max_tokens=40)
    for model in (ngram, transformer):
        print(f"\n--- {model.name} ---")
        for completion in model.generate(prompt, config):
            text = completion.text.replace("\n", "\\n")[:72]
            syntactic = check_syntax(prompt + completion.text + "\nendmodule").ok
            print(f"  [{'ok ' if syntactic else 'bad'}] {text}")
    print(
        "\n(As the paper finds for small pre-trained models, tiny LMs "
        "rarely emit compilable Verilog — scale and pre-training matter.)"
    )


if __name__ == "__main__":
    main()
