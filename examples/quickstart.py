#!/usr/bin/env python3
"""Quickstart: the complete prompt -> completion -> verdict loop.

Walks the three things the library does:

1. compile and simulate Verilog with the built-in frontend (the Icarus
   Verilog stand-in);
2. ask a model from the calibrated zoo to complete a benchmark prompt;
3. run the completion through the evaluation pipeline (truncation,
   compile gate, self-checking test bench) and print the verdict;
4. do the same through the job-based service API (``repro.api``), which
   adds pluggable backends, parallel execution and skip/error records.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.eval import Evaluator
from repro.models import GenerationConfig, make_model
from repro.problems import ALL_PROBLEMS, PromptLevel, get_problem
from repro.verilog import run_simulation


def part1_simulate_verilog() -> None:
    print("=" * 70)
    print("1. Compile + simulate Verilog directly")
    print("=" * 70)
    source = """
    module blinker(input clk, input reset, output reg led);
      always @(posedge clk) begin
        if (reset) led <= 1'b0;
        else led <= ~led;
      end
    endmodule

    module tb;
      reg clk, reset;
      wire led;
      blinker dut(.clk(clk), .reset(reset), .led(led));
      always #5 clk = ~clk;
      initial begin
        clk = 0; reset = 1;
        @(posedge clk); #1 reset = 0;
        repeat (4) begin
          @(posedge clk);
          #1 $display("t=%0t led=%b", $time, led);
        end
        $finish;
      end
    endmodule
    """
    report, result = run_simulation(source, top="tb")
    print(f"compiled: {report.ok}")
    print(result.text)
    print()


def part2_browse_problem_set() -> None:
    print("=" * 70)
    print("2. The 17-problem benchmark (paper Table II)")
    print("=" * 70)
    for problem in ALL_PROBLEMS:
        print(f"  {problem.number:>2}. [{problem.difficulty}] {problem.title}")
    print()


def part3_generate_and_evaluate() -> None:
    print("=" * 70)
    print("3. Query a fine-tuned model and evaluate its completions")
    print("=" * 70)
    problem = get_problem(6)  # the 1-to-12 counter of the paper's Fig. 3
    model = make_model("codegen-16b", fine_tuned=True)
    evaluator = Evaluator()

    prompt = problem.prompt(PromptLevel.MEDIUM)
    print("prompt:")
    print("  " + "\n  ".join(prompt.strip().splitlines()))

    completions = model.generate(
        prompt, GenerationConfig(temperature=0.1, n=10)
    )
    verdicts = []
    for index, completion in enumerate(completions):
        outcome = evaluator.evaluate(problem, completion.text)
        verdicts.append(outcome.verdict)
        print(f"  completion {index}: {outcome.verdict}")
    passes = verdicts.count("pass")
    print(f"\nPass@(scenario*10) for this prompt: {passes}/10 = {passes / 10:.2f}")
    print("(paper Table IV, CodeGen-16B FT, intermediate/M: 0.270)")


def part4_service_api() -> None:
    print("=" * 70)
    print("4. The job-based service API (repro.api)")
    print("=" * 70)
    session = Session(backend="zoo", workers=4)
    result = session.evaluate_model(
        "codegen-16b-ft", problem_numbers=(1, 2, 6), n=10
    )
    for problem in (1, 2, 6):
        records = result.sweep.filter(problem=problem)
        passes = sum(r.passed for r in records)
        print(f"  P{problem}: {passes}/{len(records)} passed")
    print(f"  stats: {result.stats['jobs']} jobs on "
          f"{result.stats['workers']} workers, "
          f"cache {result.stats['evaluator_cache']}")


if __name__ == "__main__":
    part1_simulate_verilog()
    part2_browse_problem_set()
    part3_generate_and_evaluate()
    part4_service_api()
