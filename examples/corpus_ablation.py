#!/usr/bin/env python3
"""The paper's Sec. VI ablation: GitHub-only vs GitHub+textbook corpus.

Fine-tunes CodeGen-16B twice — (a) on the GitHub corpus, (b) on GitHub
plus cleaned textbook text — evaluates both on the full problem set, and
reports the overall functional pass rates.  The paper finds (b) is
marginally (1.4%) better than (a).

Also sweeps the MinHash de-duplication threshold to show its effect on
corpus size (a design choice the paper leaves implicit).

Run:  python examples/corpus_ablation.py
"""

from repro.corpus import CorpusConfig, build_corpus
from repro.eval import Evaluator, SweepConfig, run_sweep, table4
from repro.models import finetune_zoo_model
from repro.problems import Difficulty, PromptLevel


def overall_rate(sweep, model_name: str) -> float:
    table = table4(sweep)
    key = next(k for k in table if table[k] is not None and k[0] == "codegen-16b")
    cells = [
        table[key][difficulty][level]
        for difficulty in Difficulty
        for level in PromptLevel
    ]
    return sum(cells) / len(cells)


def main() -> None:
    evaluator = Evaluator()
    sweep_config = SweepConfig(temperatures=(0.1, 0.3))

    print("fine-tuning CodeGen-16B on (a) GitHub only...")
    model_a, report_a = finetune_zoo_model(
        "codegen-16b", CorpusConfig(repos=40)
    )
    print(f"  corpus: {report_a.corpus_files} files, {report_a.corpus_bytes} bytes")

    print("fine-tuning CodeGen-16B on (b) GitHub + textbooks...")
    model_b, report_b = finetune_zoo_model(
        "codegen-16b",
        CorpusConfig(repos=40, include_textbooks=True, textbook_count=8),
    )
    print(f"  corpus: {report_b.corpus_files} files, {report_b.corpus_bytes} bytes")

    print("\nevaluating both on the 17-problem set...")
    sweep_a = run_sweep([model_a], sweep_config, evaluator)
    sweep_b = run_sweep([model_b], sweep_config, evaluator)
    rate_a = overall_rate(sweep_a, model_a.name)
    rate_b = overall_rate(sweep_b, model_b.name)
    gain = (rate_b / rate_a - 1) * 100 if rate_a else float("nan")
    print(f"  (a) GitHub only      overall pass: {rate_a:.3f}")
    print(f"  (b) GitHub + books   overall pass: {rate_b:.3f}")
    print(f"  relative gain: {gain:+.1f}%   (paper: +1.4%)")

    print("\nMinHash dedup threshold sweep (corpus files surviving):")
    for threshold in (0.5, 0.7, 0.8, 0.9, 0.99):
        corpus = build_corpus(
            CorpusConfig(repos=40, dedup_threshold=threshold)
        )
        print(f"  threshold {threshold:>4}: {len(corpus.corpus):>4} files")


if __name__ == "__main__":
    main()
