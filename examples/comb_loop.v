// Planted combinational loop: y depends on b, b depends on y, with no
// register in the cycle.  A simulator spins this to its iteration
// limit; `repro analyze examples/comb_loop.v` rejects it in
// milliseconds with a structured [comb-loop] error finding (exit 2).
// CI's analysis-smoke job runs exactly that.
module comb_loop(input a, output y);
  wire b;
  assign b = y | a;
  assign y = b & a;
endmodule
