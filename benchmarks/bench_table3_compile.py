"""Table III — Pass@(scenario*10) for compiled completions.

Regenerates the compile-rate table over the full sweep and checks the
paper's qualitative findings (RQ1/RQ2): fine-tuning dramatically improves
syntactic correctness for every model, and pre-trained Megatron never
compiles.  Measured values are expected within sampling tolerance of the
paper's (printed side by side).
"""

import pytest

from repro.eval import render_table3, table3
from repro.models import COMPILE_RATES
from repro.problems import Difficulty

TOLERANCE = 0.15  # n=40 samples per (difficulty, level) cell


def test_table3(benchmark, full_sweep):
    table = benchmark(table3, full_sweep)
    print("\n" + render_table3(table))

    # RQ2: every fine-tunable model compiles better after fine-tuning
    for base in ("megatron-355m", "codegen-2b", "codegen-6b",
                 "j1-large-7b", "codegen-16b"):
        for difficulty in Difficulty:
            assert (
                table[(base, True)][difficulty]
                >= table[(base, False)][difficulty]
            ), (base, difficulty)

    # RQ1: pre-trained Megatron produces nothing that compiles
    assert all(rate == 0.0 for rate in table[("megatron-355m", False)].values())

    # absolute agreement with the paper within sampling tolerance
    for key, row in COMPILE_RATES.items():
        for difficulty, paper_rate in row.items():
            measured = table[key][difficulty]
            assert measured == pytest.approx(paper_rate, abs=TOLERANCE), (
                key, difficulty, measured, paper_rate,
            )
