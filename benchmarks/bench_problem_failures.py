"""Sec. VI failure analysis — per-problem pass counts for the best model.

The paper reports that out of 540 completions per problem, CodeGen-16B FT
passed none for Problem 7 (LFSR) and Problem 12 (truth table), and only
one for Problem 9 (shift and rotate).  Regenerates the per-problem
breakdown and checks those hard problems stay at (essentially) zero while
the basic problems pass often.
"""

from repro.eval import per_problem_pass_counts
from repro.problems import get_problem


def test_per_problem_failures(benchmark, full_sweep):
    counts = benchmark(per_problem_pass_counts, full_sweep, "codegen-16b-ft")

    print("\nCodeGen-16B FT — passes per problem (full sweep)")
    for number, (passes, total) in counts.items():
        title = get_problem(number).title
        print(f"  P{number:>2} {title:<40} {passes:>4}/{total}")

    assert counts[7][0] == 0, "Problem 7 (LFSR): paper reports zero passes"
    assert counts[12][0] == 0, "Problem 12 (truth table): zero passes"
    assert counts[9][0] <= counts[9][1] * 0.02, "Problem 9: almost never"
    for basic in (1, 2, 3, 4):
        assert counts[basic][0] > counts[basic][1] * 0.15, basic
