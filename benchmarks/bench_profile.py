"""Simulator-profiler benchmark: overhead + hotspot coverage gates.

The :mod:`repro.obs.profile` layer makes two promises this script
prices:

* **disabled is free** — ``enable_profiling()`` without a trace sink
  must leave the simulator's dispatch loop untouched
  (:func:`maybe_sim_profiler` returns ``None``), so the "enabled but
  unsinked" configuration must run at bare speed;
* **enabled is cheap and useful** — with a sink installed the profiled
  sweep may cost at most a small slowdown (default 10%) and must
  attribute at least a target share of sim wall time (default 80%) to
  named netlist constructs.

Three configurations run back to back per repeat over the canonical
solutions of the simulation-heavy problems (stub-canonical backend, so
generation is free and sim time dominates)::

    PYTHONPATH=src python benchmarks/bench_profile.py
    PYTHONPATH=src python benchmarks/bench_profile.py \
        --repeats 5 --max-overhead 10 --min-coverage 0.8

All three configurations must produce record-identical sweeps (the
profiler is observational).  Scheduler noise on shared runners only
ever *slows* a run, so the gated overhead is the **minimum** per-pair
ratio with the median reported alongside.  The numbers land in
``BENCH_profile.json`` next to this script.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.api import Session
from repro.eval import SweepConfig
from repro.obs import TraceWriter, profiling, summarize_traces
from repro.problems import PromptLevel


def build_config(args) -> SweepConfig:
    return SweepConfig(
        temperatures=(0.1,),
        completions_per_prompt=(args.n,),
        levels=(PromptLevel.LOW,),
        problem_numbers=tuple(
            int(part) for part in args.problems.split(",")
        ),
    )


def run_once(config, mode: str, trace_path: "str | None"):
    """One sweep on a fresh session; returns (wall seconds, result).

    ``mode`` is one of:

    * ``bare`` — no tracing, no profiling;
    * ``disabled`` — profiling enabled but no sink installed, which must
      resolve to the bare dispatch loop (the zero-cost claim);
    * ``enabled`` — profiling enabled under a TraceWriter sink, the
      configuration that actually emits profile frames.
    """
    session = Session(backend="stub-canonical")
    plan = session.plan(config)
    if mode == "bare":
        started = time.perf_counter()
        result = session.run_plan(plan)
        return time.perf_counter() - started, result
    if mode == "disabled":
        with profiling():
            started = time.perf_counter()
            result = session.run_plan(plan)
            return time.perf_counter() - started, result
    with profiling(), TraceWriter(trace_path):
        started = time.perf_counter()
        result = session.run_plan(plan)
        return time.perf_counter() - started, result


def measure(repeats: int, config, trace_path: str):
    """Paired bare/disabled/enabled runs; drift cancels within a pair."""
    best = {"bare": None, "disabled": None, "enabled": None}
    results = {}
    disabled_ratios = []
    enabled_ratios = []
    for _ in range(repeats):
        bare, results["bare"] = run_once(config, "bare", None)
        disabled, results["disabled"] = run_once(config, "disabled", None)
        enabled, results["enabled"] = run_once(config, "enabled",
                                               trace_path)
        for mode, seconds in (("bare", bare), ("disabled", disabled),
                              ("enabled", enabled)):
            best[mode] = (
                seconds if best[mode] is None else min(best[mode], seconds)
            )
        disabled_ratios.append(disabled / bare)
        enabled_ratios.append(enabled / bare)
    disabled_ratios.sort()
    enabled_ratios.sort()
    return best, results, disabled_ratios, enabled_ratios


def _median(sorted_values):
    mid = len(sorted_values) // 2
    if len(sorted_values) % 2:
        return sorted_values[mid]
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--problems", default="15,16,17",
                        help="comma-separated problem numbers (default: "
                             "the simulation-heavy tail of the set)")
    parser.add_argument("--n", type=int, default=4,
                        help="completions per prompt (default: 4)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="paired runs per configuration; min ratio "
                             "is gated")
    parser.add_argument("--max-overhead", type=float, default=10.0,
                        help="fail when the profiled run is more than "
                             "this percent slower than bare "
                             "(default: 10.0)")
    parser.add_argument("--max-disabled-overhead", type=float, default=3.0,
                        help="fail when enabled-but-unsinked profiling "
                             "costs more than this percent (default: 3.0 "
                             "— the zero-cost claim, with noise margin)")
    parser.add_argument("--min-coverage", type=float, default=0.80,
                        help="fail when less than this fraction of sim "
                             "wall time is attributed to constructs "
                             "(default: 0.80)")
    parser.add_argument("--output", default=None,
                        help="artifact path (default: BENCH_profile.json "
                             "next to this script)")
    args = parser.parse_args(argv)

    config = build_config(args)
    trace_path = os.path.join(tempfile.mkdtemp(), "bench_profile.trace")

    best, results, disabled_ratios, enabled_ratios = measure(
        args.repeats, config, trace_path
    )

    for mode in ("disabled", "enabled"):
        if results[mode].sweep.records != results["bare"].sweep.records:
            print(f"PARITY FAILURE: {mode} sweep != bare sweep")
            return 1
    print("record parity: OK (profiling is observational)")

    profile = summarize_traces([trace_path])["profile"]
    coverage = profile["coverage"]
    disabled_pct = (disabled_ratios[0] - 1.0) * 100.0
    enabled_pct = (enabled_ratios[0] - 1.0) * 100.0
    jobs = len(results["bare"].sweep.records)
    print(f"{jobs} records/run, {profile['frames']} profile frames, "
          f"{len(profile['constructs'])} constructs, "
          f"{args.repeats} paired repeats:")
    print(f"  bare:     {best['bare'] * 1000:8.1f} ms (best)")
    print(f"  disabled: {best['disabled'] * 1000:8.1f} ms (best) "
          f"[{disabled_pct:+.2f}% best pair; median "
          f"{(_median(disabled_ratios) - 1.0) * 100.0:+.2f}%]")
    print(f"  enabled:  {best['enabled'] * 1000:8.1f} ms (best) "
          f"[{enabled_pct:+.2f}% best pair; median "
          f"{(_median(enabled_ratios) - 1.0) * 100.0:+.2f}%]")
    print(f"  coverage: {coverage:.1%} of {profile['sim_seconds']:.4f}s "
          f"sim wall time attributed")

    output = args.output or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_profile.json"
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "records": jobs,
                "profile_frames": profile["frames"],
                "constructs": len(profile["constructs"]),
                "repeats": args.repeats,
                "bare_seconds": round(best["bare"], 6),
                "disabled_seconds": round(best["disabled"], 6),
                "enabled_seconds": round(best["enabled"], 6),
                "disabled_pair_ratios": [
                    round(r, 6) for r in disabled_ratios
                ],
                "enabled_pair_ratios": [
                    round(r, 6) for r in enabled_ratios
                ],
                "disabled_overhead_pct": round(disabled_pct, 3),
                "enabled_overhead_pct": round(enabled_pct, 3),
                "coverage": round(coverage, 6),
                "sim_seconds": round(profile["sim_seconds"], 6),
                "max_overhead_pct": args.max_overhead,
                "max_disabled_overhead_pct": args.max_disabled_overhead,
                "min_coverage": args.min_coverage,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"-- wrote {output}")

    failed = False
    if disabled_pct > args.max_disabled_overhead:
        print(f"FAIL: disabled-profiling overhead {disabled_pct:.2f}% > "
              f"{args.max_disabled_overhead:.1f}% budget")
        failed = True
    if enabled_pct > args.max_overhead:
        print(f"FAIL: profiling overhead {enabled_pct:.2f}% > "
              f"{args.max_overhead:.1f}% budget")
        failed = True
    if coverage < args.min_coverage:
        print(f"FAIL: coverage {coverage:.1%} < "
              f"{args.min_coverage:.0%} target")
        failed = True
    if failed:
        return 1
    print(f"OK: disabled {disabled_pct:+.2f}% <= "
          f"{args.max_disabled_overhead:.1f}%, enabled {enabled_pct:+.2f}% "
          f"<= {args.max_overhead:.1f}%, coverage {coverage:.1%} >= "
          f"{args.min_coverage:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
