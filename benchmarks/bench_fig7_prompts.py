"""Fig. 7 (left) — Pass@(scenario*10) across prompt-description levels.

Regenerates the L/M/H panel.  The paper's reading: "the number of correct
solutions decreases with terse prompts" — i.e. for most capable models
the LOW (tersest) prompt is not the best one.
"""

from repro.eval import fig7_levels, render_series
from repro.problems import PromptLevel


def test_fig7_levels(benchmark, full_sweep):
    series = benchmark(fig7_levels, full_sweep)
    print("\n" + render_series(
        "Fig. 7 (left) — pass rate vs description level (best-t, n=10)",
        series,
    ))

    for model, curve in series.items():
        assert set(curve) == set(PromptLevel), model
        assert all(0.0 <= rate <= 1.0 for rate in curve.values())

    # codex gains steadily from more detail (paper Table IV basic row:
    # 0.520 -> 0.685 -> 0.775)
    codex = series["code-davinci-002-pt"]
    assert codex[PromptLevel.HIGH] >= codex[PromptLevel.LOW]

    # strong fine-tuned models do not collapse on terse prompts, but at
    # least one weak model shows the terse-prompt penalty
    ft16 = series["codegen-16b-ft"]
    assert min(ft16.values()) > 0.2
