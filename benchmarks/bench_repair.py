"""Agentic repair benchmark: pass@1 versus repair budget.

The agentic workload's headline curve: run the same sweep over the
repairable zoo (``zoo-repair`` — calibrated models that fix a tunable
fraction of their own failures when re-prompted with the structured
error) at a range of repair budgets and report how pass@1 climbs as
each failing sample is granted more error-conditioned repair rounds.

Passing samples are never re-prompted, so the curve is provably
monotone; the interesting numbers are the *lift per budget unit* (how
much each extra round buys) and the diminishing returns past the first
round.  Run it standalone::

    PYTHONPATH=src python benchmarks/bench_repair.py
    PYTHONPATH=src python benchmarks/bench_repair.py \
        --budgets 0,1,2,3 --repair-rate 0.5 --min-lift 0.1

``--min-lift X`` exits non-zero unless the highest budget improves
pass@1 over budget 0 by at least X (absolute) — the CI gate that the
repair loop actually repairs.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Session
from repro.backends import LocalZooBackend
from repro.eval import SweepConfig
from repro.models import make_model
from repro.problems import PromptLevel


def build_config(args) -> SweepConfig:
    return SweepConfig(
        temperatures=(args.temperature,),
        completions_per_prompt=(args.n,),
        levels=(PromptLevel.MEDIUM,),
        problem_numbers=tuple(range(1, args.problems + 1)),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budgets", default="0,1,2",
                        help="comma-separated repair budgets (default 0,1,2)")
    parser.add_argument("--model", default="megatron-355m",
                        help="zoo model (Table-I name; default: the "
                             "weakest, so repairs have room to work)")
    parser.add_argument("--repair-rate", type=float, default=0.5,
                        help="probability an error-conditioned re-query "
                             "fixes the failure (default 0.5)")
    parser.add_argument("--temperature", type=float, default=0.5)
    parser.add_argument("--n", type=int, default=5,
                        help="completions per prompt (default 5)")
    parser.add_argument("--problems", type=int, default=8,
                        help="benchmark problems 1..N (default 8)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--min-lift", type=float, default=None,
                        help="fail unless max-budget pass@1 beats budget-0 "
                             "pass@1 by at least this much (absolute)")
    args = parser.parse_args(argv)

    budgets = sorted(int(b) for b in args.budgets.split(","))
    backend = LocalZooBackend(
        [make_model(args.model, repair_rate=args.repair_rate)]
    )
    session = Session(backend=backend, workers=args.workers)
    config = build_config(args)

    started = time.perf_counter()
    out = session.repair_curve(budgets=budgets, config=config)
    elapsed = time.perf_counter() - started

    print(f"model={args.model} repair_rate={args.repair_rate} "
          f"t={args.temperature} n={args.n} "
          f"problems=1..{args.problems} ({elapsed:.2f}s total)")
    print(f"{'budget':>6} {'records':>8} {'compile':>8} {'pass':>8} "
          f"{'pass@1':>8} {'lift':>8} {'lift/rd':>8}")
    for row in out["curve"]:
        print(f"{row['budget']:>6} {row['records']:>8} "
              f"{row['compile_rate']:>8.3f} {row['pass_rate']:>8.3f} "
              f"{row['pass_at_k']:>8.3f} {row['lift']:>+8.3f} "
              f"{row['lift_per_budget']:>+8.3f}")

    top = out["curve"][-1]
    if args.min_lift is not None and top["lift"] < args.min_lift:
        print(f"FAIL: budget-{top['budget']} lift {top['lift']:.3f} "
              f"< required {args.min_lift}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
