"""Executor scaling benchmark: serial vs thread pool vs process pool.

Generation and evaluation are pure-Python CPU work (the zoo's RNG text
synthesis plus the compile/simulate pipeline), so the thread executor is
GIL-bound: it matches the serial records exactly but cannot beat serial
wall-clock.  The process executor is the one that scales with cores —
this script measures all three on the same CPU-bound multi-model sweep,
verifies record-for-record parity, and reports the speedups.

Run it standalone (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_executor_scaling.py
    PYTHONPATH=src python benchmarks/bench_executor_scaling.py \
        --workers 8 --temperatures 0.5,0.8 --min-speedup 1.2

``--min-speedup X`` exits non-zero unless process beats thread by that
factor — meaningful only on multi-core machines (the script prints the
core count and skips the assertion on a single core, where no executor
can win by more than noise).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.backends import LocalZooBackend
from repro.eval import SweepConfig, SweepExecutor, SweepPlanner
from repro.eval.pipeline import Evaluator
from repro.models import make_model
from repro.problems import PromptLevel
from repro.service import ProcessPoolSweepExecutor

# pre-trained variants at high temperature emit many *distinct* broken/
# wrong completions, so the evaluator cache cannot collapse the work and
# every job pays real compile/simulate CPU — the workload the paper's
# full sweep is made of
DEFAULT_MODELS = "codegen-2b,codegen-6b,codegen-16b"


def build_plan(args):
    backend = LocalZooBackend(
        [make_model(name) for name in args.models.split(",")]
    )
    config = SweepConfig(
        temperatures=tuple(float(t) for t in args.temperatures.split(",")),
        completions_per_prompt=(args.n,),
        levels=(PromptLevel.LOW,),
    )
    return backend, SweepPlanner(backend).plan(config)


def bench(label, factory, plan, repeat):
    best = None
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = factory().run(plan)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--models", default=DEFAULT_MODELS)
    parser.add_argument("--temperatures", default="0.5,0.8")
    parser.add_argument("--n", type=int, default=10)
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--repeat", type=int, default=1,
                        help="runs per executor; best time wins")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless process/thread >= this factor "
                             "(skipped on single-core machines)")
    args = parser.parse_args(argv)

    backend, plan = build_plan(args)
    cores = os.cpu_count() or 1
    print(
        f"{len(plan.jobs)} jobs ({plan.completions_planned} completions), "
        f"{cores} cores, {args.workers} workers"
    )

    executors = (
        ("serial", lambda: SweepExecutor(backend, evaluator=Evaluator())),
        ("thread", lambda: SweepExecutor(
            backend, evaluator=Evaluator(), workers=args.workers)),
        ("process", lambda: ProcessPoolSweepExecutor(
            backend, workers=args.workers)),
    )
    times = {}
    records = {}
    for label, factory in executors:
        times[label], result = bench(label, factory, plan, args.repeat)
        records[label] = result.sweep.records
        print(f"  {label:>8}: {times[label]:7.2f}s "
              f"({len(result.sweep)} records)")

    if not (records["serial"] == records["thread"] == records["process"]):
        print("PARITY FAILURE: executors disagree on records")
        return 1
    print("record parity: OK (all three executors byte-identical)")

    thread_speedup = times["serial"] / times["thread"]
    process_speedup = times["thread"] / times["process"]
    print(f"thread  vs serial: {thread_speedup:5.2f}x  (GIL-bound: ~1.0x)")
    print(f"process vs thread: {process_speedup:5.2f}x")

    if args.min_speedup is not None:
        if cores < 2:
            print(f"single core: skipping --min-speedup {args.min_speedup} "
                  "assertion (no parallel speedup is physically possible)")
        elif process_speedup < args.min_speedup:
            print(f"FAIL: process speedup {process_speedup:.2f}x < "
                  f"required {args.min_speedup}x")
            return 1
        else:
            print(f"OK: process speedup {process_speedup:.2f}x >= "
                  f"{args.min_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
