"""Table IV — Pass@(scenario*10) for test-bench-passing completions.

Regenerates the functional table (difficulty x description level, plus
per-query inference times) and checks the paper's orderings: the
fine-tuned CodeGen-16B is the best fine-tuned model overall, fine-tuning
speeds up inference (shorter outputs), and each measured cell agrees with
the paper within sampling tolerance.
"""

import pytest

from repro.eval import render_table4, table4
from repro.models import FUNCTIONAL_RATES, INFERENCE_SECONDS
from repro.problems import Difficulty, PromptLevel

# Each cell is estimated from 40 samples (4-8 problems x n=10) with
# best-of-5-temperatures selection, so individual cells can sit ~2 sigma
# from the paper's value; 0.2 covers that while still pinning the shape.
TOLERANCE = 0.20


def _overall(row) -> float:
    cells = [
        row[difficulty][level]
        for difficulty in Difficulty
        for level in PromptLevel
    ]
    return sum(cells) / len(cells)


def test_table4(benchmark, full_sweep):
    table = benchmark(table4, full_sweep)
    print("\n" + render_table4(table))

    # the fine-tuned CodeGen-16B beats every other fine-tuned model
    best = _overall(table[("codegen-16b", True)])
    for (base, fine_tuned), row in table.items():
        if fine_tuned and base != "codegen-16b":
            assert best >= _overall(row), base

    # ...and beats the commercial codex model (paper Sec. VII)
    assert best > _overall(table[("code-davinci-002", False)])

    # inference time: fine-tuned variants answer faster (paper Table IV)
    for base in ("megatron-355m", "codegen-2b", "codegen-6b",
                 "j1-large-7b", "codegen-16b"):
        assert table[(base, True)]["time"] < table[(base, False)]["time"]

    # measured inference times match the published column
    for (base, fine_tuned), row in table.items():
        paper_time = INFERENCE_SECONDS.get((base, fine_tuned))
        if paper_time is not None:
            assert row["time"] == pytest.approx(paper_time, rel=0.1)

    # cell-level agreement with the paper within sampling tolerance
    for key, paper_row in FUNCTIONAL_RATES.items():
        for difficulty, by_level in paper_row.items():
            for level, paper_rate in by_level.items():
                measured = table[key][difficulty][level]
                assert measured == pytest.approx(
                    paper_rate, abs=TOLERANCE
                ), (key, difficulty, level, measured, paper_rate)
