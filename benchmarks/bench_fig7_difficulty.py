"""Fig. 7 (right) — Pass@(scenario*10) across problem difficulty.

Regenerates the basic/intermediate/advanced panel and checks the paper's
finding: "the Pass@(scenario*10) decreases with increasing prompt
difficulty" — simple problems like the AND gate translate easily, LFSRs
do not.
"""

from repro.eval import fig7_difficulty, render_series
from repro.problems import Difficulty


def test_fig7_difficulty(benchmark, full_sweep):
    series = benchmark(fig7_difficulty, full_sweep)
    print("\n" + render_series(
        "Fig. 7 (right) — pass rate vs difficulty (best-t, n=10)", series
    ))

    for model, curve in series.items():
        if max(curve.values()) < 0.05:
            continue
        # basic is the easiest for every model with signal
        assert curve[Difficulty.BASIC] == max(curve.values()), model
        assert curve[Difficulty.BASIC] > curve[Difficulty.INTERMEDIATE], model

    # larger models beat smaller ones at every difficulty (RQ3)
    for difficulty in Difficulty:
        assert (
            series["codegen-16b-ft"][difficulty]
            >= series["megatron-355m-ft"][difficulty]
        )
