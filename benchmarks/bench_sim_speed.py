"""Compiled-simulation benchmark: speedup + record-parity gates.

The netlist→closure engine (:mod:`repro.verilog.codegen`) makes two
promises this script prices:

* **the sim stage gets fast** — on the simulation-heavy tail of the
  problem set the compiled engine must run the bench simulation at
  least ``--min-speedup`` times (default 3x) faster than the
  tree-walking interpreter, gated on the **minimum** per-problem
  paired ratio (scheduler noise only ever slows a run, so the minimum
  is the honest bound);
* **verdicts don't move** — a full sweep with ``compile_sim=True``
  must produce records byte-identical to the interpreted sweep.

The speedup gate measures ``report.sim_seconds`` (the simulate loop
alone, excluding parse/elaborate and engine construction) because that
is the stage the engine replaces.  End-to-end evaluation wall time is
measured and reported alongside but *not* gated: once simulation is
compiled, parsing the ~100-line bench source dominates a single
evaluation (Amdahl), so the whole-pipeline ratio is far smaller than
the sim-stage ratio.  Both numbers land in ``BENCH_sim_speed.json``
next to this script::

    PYTHONPATH=src python benchmarks/bench_sim_speed.py
    PYTHONPATH=src python benchmarks/bench_sim_speed.py \
        --problems 15,16,17 --repeats 5 --min-speedup 3.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api import Session
from repro.eval import SweepConfig
from repro.problems import ALL_PROBLEMS, PromptLevel
from repro.verilog import run_simulation
from repro.verilog.codegen import CompiledEngine
from repro.verilog.compile import compile_design


def bench_sources(problem_numbers):
    by_number = {problem.number: problem for problem in ALL_PROBLEMS}
    return {
        number: by_number[number].bench_source(
            by_number[number].canonical_body, PromptLevel.LOW
        )
        for number in problem_numbers
    }


def measure_sim_stage(sources, repeats):
    """Per-problem best-of-``repeats`` sim-stage seconds, both engines.

    Runs are paired (interpreted then compiled, back to back) so slow
    drift on a shared runner cancels within a repeat; taking the best
    of the repeats per engine discards one-off scheduler stalls.
    """
    rows = {}
    for number, source in sources.items():
        interpreted = compiled = None
        engine_build = None
        for _ in range(repeats):
            report, sim = run_simulation(source, top="tb")
            assert report.ok and sim is not None, report.errors
            interpreted = (report.sim_seconds if interpreted is None
                           else min(interpreted, report.sim_seconds))
            baseline = (sim.finished, sim.time, tuple(sim.output))

            report, sim = run_simulation(source, top="tb", compile_sim=True)
            assert report.ok and sim is not None, report.errors
            assert report.sim_engine is not None, "engine failed to build"
            assert report.sim_engine["fallbacks"] == [], (
                f"p{number:02d} hit interpreter fallbacks: "
                f"{report.sim_engine['fallbacks']}"
            )
            assert (sim.finished, sim.time, tuple(sim.output)) == baseline
            compiled = (report.sim_seconds if compiled is None
                        else min(compiled, report.sim_seconds))

            built = compile_design(source, top="tb")
            started = time.perf_counter()
            CompiledEngine(built.design)
            build_seconds = time.perf_counter() - started
            engine_build = (build_seconds if engine_build is None
                            else min(engine_build, build_seconds))
        rows[number] = {
            "interpreted_sim_seconds": round(interpreted, 6),
            "compiled_sim_seconds": round(compiled, 6),
            "engine_build_seconds": round(engine_build, 6),
            "speedup": round(interpreted / compiled, 3),
        }
    return rows


def measure_sweep(config, compile_sim, repeats):
    """Best-of-``repeats`` end-to-end sweep wall time on fresh sessions."""
    best = None
    result = None
    for _ in range(repeats):
        session = Session(backend="stub-canonical", compile_sim=compile_sim)
        plan = session.plan(config)
        started = time.perf_counter()
        result = session.run_plan(plan)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--problems", default="15,16,17",
                        help="comma-separated problem numbers (default: "
                             "the simulation-heavy tail of the set)")
    parser.add_argument("--n", type=int, default=4,
                        help="completions per prompt for the parity sweep "
                             "(default: 4)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="paired runs per measurement; best is kept")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail when any problem's sim-stage speedup "
                             "is below this ratio (default: 3.0)")
    parser.add_argument("--output", default=None,
                        help="artifact path (default: BENCH_sim_speed.json "
                             "next to this script)")
    args = parser.parse_args(argv)

    problem_numbers = tuple(int(part) for part in args.problems.split(","))
    sources = bench_sources(problem_numbers)

    rows = measure_sim_stage(sources, args.repeats)
    worst = min(row["speedup"] for row in rows.values())

    config = SweepConfig(
        temperatures=(0.1,),
        completions_per_prompt=(args.n,),
        levels=(PromptLevel.LOW,),
        problem_numbers=problem_numbers,
    )
    interpreted_wall, interpreted_result = measure_sweep(
        config, compile_sim=False, repeats=max(1, args.repeats // 2)
    )
    compiled_wall, compiled_result = measure_sweep(
        config, compile_sim=True, repeats=max(1, args.repeats // 2)
    )
    parity = (compiled_result.sweep.records
              == interpreted_result.sweep.records)

    print(f"sim-stage speedups (best of {args.repeats} paired repeats, "
          f"sim loop only):")
    for number, row in sorted(rows.items()):
        print(f"  p{number:02d}: {row['interpreted_sim_seconds'] * 1000:7.2f}"
              f" ms -> {row['compiled_sim_seconds'] * 1000:6.2f} ms  "
              f"({row['speedup']:.2f}x; engine build "
              f"{row['engine_build_seconds'] * 1000:.2f} ms)")
    records = len(compiled_result.sweep.records)
    print(f"end-to-end sweep ({records} records): "
          f"{interpreted_wall * 1000:.1f} ms interpreted -> "
          f"{compiled_wall * 1000:.1f} ms compiled "
          f"({interpreted_wall / compiled_wall:.2f}x; parse-dominated, "
          f"not gated)")
    print(f"record parity: {'OK' if parity else 'FAILURE'}")

    output = args.output or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_sim_speed.json"
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "problems": {f"p{n:02d}": row
                             for n, row in sorted(rows.items())},
                "min_pair_speedup": worst,
                "min_speedup_gate": args.min_speedup,
                "repeats": args.repeats,
                "sweep_records": records,
                "sweep_interpreted_seconds": round(interpreted_wall, 6),
                "sweep_compiled_seconds": round(compiled_wall, 6),
                "sweep_speedup": round(interpreted_wall / compiled_wall, 3),
                "record_parity": parity,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"-- wrote {output}")

    failed = False
    if not parity:
        print("FAIL: compiled sweep records differ from interpreted sweep")
        failed = True
    if worst < args.min_speedup:
        print(f"FAIL: min sim-stage speedup {worst:.2f}x < "
              f"{args.min_speedup:.1f}x gate")
        failed = True
    if failed:
        return 1
    print(f"OK: min sim-stage speedup {worst:.2f}x >= "
          f"{args.min_speedup:.1f}x, records identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
