"""Extension — unbiased pass@k and uncertainty (VerilogEval-style).

The paper reports raw pass fractions; follow-on benchmarks standardized
on the Codex pass@k estimator with confidence intervals.  This benchmark
computes both over the full sweep: pass@k curves for the strongest
models, a bootstrap CI on the headline rate, and a paired-bootstrap
model comparison confirming the paper's main ranking with uncertainty
attached.
"""

from repro.eval import (
    bootstrap_interval,
    model_comparison,
    pass_at_k_curve,
    scenario_pass_at_k,
)
from repro.problems import Difficulty, PromptLevel


def test_pass_at_k_curves(benchmark, full_sweep):
    def build():
        return {
            model: {
                k: scenario_pass_at_k(
                    full_sweep, model, k, difficulty=Difficulty.BASIC
                )
                for k in (1, 5, 10)
            }
            for model in ("codegen-16b-ft", "codegen-6b-ft",
                          "code-davinci-002-pt", "megatron-355m-ft")
        }

    curves = benchmark(build)
    print("\npass@k on basic problems (unbiased estimator):")
    for model, curve in curves.items():
        pts = "  ".join(f"k={k}:{v:.3f}" for k, v in curve.items())
        print(f"  {model:<22} {pts}")
    for model, curve in curves.items():
        assert curve[1] <= curve[5] <= curve[10], model
    # at k=10, the strong fine-tuned models solve essentially all basic problems
    assert curves["codegen-16b-ft"][10] > 0.9


def test_per_problem_curve_monotone(full_sweep):
    curve = pass_at_k_curve(
        full_sweep, "codegen-16b-ft", problem=3,
        level=PromptLevel.MEDIUM, temperature=0.1,
    )
    values = [curve[k] for k in sorted(curve)]
    assert values == sorted(values)


def test_headline_uncertainty(benchmark, full_sweep):
    outcomes = [
        r.passed
        for r in full_sweep.filter(model="codegen-16b-ft", temperature=0.1)
    ]

    interval = benchmark(bootstrap_interval, outcomes, 0.95, 500)
    print(
        f"\nCodeGen-16B FT pass rate at t=0.1: {interval.point:.3f} "
        f"[{interval.low:.3f}, {interval.high:.3f}] (95% bootstrap)"
    )
    assert interval.low < interval.point < interval.high
    # paper headline neighbourhood: 0.419 overall at best-t
    assert 0.25 < interval.point < 0.55


def test_ranking_is_statistically_solid(full_sweep):
    win = model_comparison(
        full_sweep, "codegen-16b-ft", "megatron-355m-ft", resamples=300
    )
    assert win > 0.99
    win_vs_codex = model_comparison(
        full_sweep, "codegen-16b-ft", "code-davinci-002-pt", resamples=300
    )
    print(f"\nP(16B-FT beats codex) = {win_vs_codex:.2f} (paired bootstrap)")
    assert win_vs_codex > 0.5
