"""Table I — baseline LLM architectures used in the study.

Regenerates the architecture table (layers/heads/embedding/context) and
checks it against the paper's published values.
"""

from repro.models import MODEL_TABLE


def render_table1() -> str:
    lines = [
        "Table I — Baseline LLM architectures",
        f"{'Model':<18} {'Params':>7} {'Layers':>7} {'Heads':>6} "
        f"{'Embed':>6} {'Context':>8}  Pre-training",
    ]
    for spec in MODEL_TABLE:
        lines.append(
            f"{spec.name:<18} {spec.parameters:>7} "
            f"{spec.layers if spec.layers is not None else 'NA':>7} "
            f"{spec.heads if spec.heads is not None else 'NA':>6} "
            f"{spec.embed if spec.embed is not None else 'NA':>6} "
            f"{spec.context_length:>8}  {spec.pretraining}"
        )
    return "\n".join(lines)


def test_table1(benchmark):
    table = benchmark(render_table1)
    print("\n" + table)
    # paper Table I rows, verbatim
    by_name = {spec.name: spec for spec in MODEL_TABLE}
    assert (by_name["megatron-355m"].layers, by_name["megatron-355m"].embed) == (24, 64)
    assert (by_name["codegen-2b"].layers, by_name["codegen-2b"].heads) == (32, 32)
    assert (by_name["codegen-6b"].layers, by_name["codegen-6b"].embed) == (33, 256)
    assert (by_name["codegen-16b"].layers, by_name["codegen-16b"].heads) == (34, 24)
    assert by_name["j1-large-7b"].context_length == 4096
    assert by_name["code-davinci-002"].context_length == 8000
