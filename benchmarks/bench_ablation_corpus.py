"""Sec. VI ablation — fine-tuning corpus: GitHub only vs GitHub + books.

The paper: "The Pass@(scenario*10) for (a) and (b) show that option (b)
is marginally better (1.4%) than (a)".  Regenerates the comparison with
CodeGen-16B fine-tuned on both corpora, plus a MinHash-threshold
sensitivity sweep on the corpus itself (a design choice DESIGN.md calls
out for ablation).
"""

import pytest

from repro.corpus import CorpusConfig, build_corpus
from repro.eval import Evaluator, SweepConfig, run_sweep, table4
from repro.models import finetune_zoo_model
from repro.problems import Difficulty, PromptLevel


def _overall(sweep) -> float:
    table = table4(sweep)
    row = table[("codegen-16b", True)]
    cells = [
        row[difficulty][level]
        for difficulty in Difficulty
        for level in PromptLevel
    ]
    return sum(cells) / len(cells)


@pytest.fixture(scope="module")
def ablation_rates():
    evaluator = Evaluator()
    config = SweepConfig(temperatures=(0.1, 0.3))
    model_a, _ = finetune_zoo_model("codegen-16b", CorpusConfig(repos=30))
    model_b, _ = finetune_zoo_model(
        "codegen-16b",
        CorpusConfig(repos=30, include_textbooks=True, textbook_count=6),
    )
    rate_a = _overall(run_sweep([model_a], config, evaluator))
    rate_b = _overall(run_sweep([model_b], config, evaluator))
    return rate_a, rate_b


def test_ablation_textbooks_marginally_better(benchmark, ablation_rates):
    rate_a, rate_b = benchmark(lambda: ablation_rates)
    gain = (rate_b / rate_a - 1) * 100
    print(
        f"\nSec. VI ablation — overall functional pass"
        f"\n  (a) GitHub only    : {rate_a:.3f}"
        f"\n  (b) GitHub + books : {rate_b:.3f}"
        f"\n  relative gain      : {gain:+.1f}%  (paper: +1.4%)"
    )
    assert rate_b >= rate_a, "books corpus must not hurt"
    assert gain < 15.0, "gain stays marginal, as in the paper"


def test_dedup_threshold_sensitivity(benchmark):
    def corpus_sizes():
        return {
            threshold: len(build_corpus(
                CorpusConfig(repos=25, dedup_threshold=threshold)
            ).corpus)
            for threshold in (0.5, 0.8, 0.99)
        }

    sizes = benchmark.pedantic(corpus_sizes, rounds=1, iterations=1)
    print(f"\nMinHash threshold -> surviving files: {sizes}")
    assert sizes[0.5] <= sizes[0.8] <= sizes[0.99]
