"""Shared fixtures for the table/figure benchmarks.

Two sweeps are built once per session and shared by every benchmark:

* ``full_sweep`` — the paper's main grid (11 variants x 17 problems x
  3 levels x 5 temperatures x n=10), feeding Tables III/IV, Fig. 6-left,
  Fig. 7 and the headline numbers;
* ``n_sweep`` — the completions-per-prompt grid (n in {1, 10, 25}) for
  Fig. 6-right.

A single caching :class:`Evaluator` is shared so identical completions
are compiled/simulated once across the whole benchmark session.
"""

import pytest

from repro.eval import Evaluator, SweepConfig, run_sweep
from repro.models import paper_model_variants


@pytest.fixture(scope="session")
def evaluator():
    return Evaluator()


@pytest.fixture(scope="session")
def full_sweep(evaluator):
    return run_sweep(paper_model_variants(), SweepConfig(), evaluator)


@pytest.fixture(scope="session")
def n_sweep(evaluator):
    config = SweepConfig(
        temperatures=(0.1, 0.3),
        completions_per_prompt=(1, 10, 25),
    )
    return run_sweep(paper_model_variants(), config, evaluator)
