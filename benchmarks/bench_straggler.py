"""Straggler benchmark: shard-level vs job-level leasing wall-clock.

A coordinated fleet is only as fast as its slowest lease.  With
shard-level leases, one slow worker that grabs a shard commits to the
whole thing — every other worker finishes and idles while the straggler
grinds through its half of the sweep.  Job-level leasing
(``ShardCoordinator(lease_jobs=N)`` / ``coordinate --lease-jobs N``)
bounds the damage: the straggler holds at most N jobs at a time, so the
fast workers absorb the rest of the plan and the wall-clock shrinks to
roughly the straggler's *last unit*, not its whole shard.

This script builds one plan, injects per-request latency into two
pull-based workers — one slow, one fast — and runs the same fleet twice:

* ``shard-level`` — the classic split (one lease per shard);
* ``job-level``   — the same plan carved into ``--lease-jobs`` ranges.

Both runs must merge record-for-record identical to a serial run (the
coordinator parity invariant); the reported speedup is
``shard_time / job_time``.  Run it standalone::

    PYTHONPATH=src python benchmarks/bench_straggler.py
    PYTHONPATH=src python benchmarks/bench_straggler.py \
        --slow-latency 0.05 --lease-jobs 2 --min-speedup 1.3

``--min-speedup X`` exits non-zero unless job-level leasing beats
shard-level by that factor.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.api import Session
from repro.backends import StubBackend
from repro.eval import SweepConfig, SweepExecutor, SweepPlanner
from repro.problems import PromptLevel
from repro.service import (
    ServiceApp,
    ShardCoordinator,
    ShardPlanner,
    in_process_transport,
    run_worker,
)


class LatencyStub(StubBackend):
    """Deterministic stub whose every generate call blocks for a bit —
    the per-worker knob that makes one fleet member a straggler."""

    def __init__(self, latency: float, **kwargs):
        super().__init__(**kwargs)
        self.latency = latency

    def generate(self, model, prompt, config):
        time.sleep(self.latency)
        return super().generate(model, prompt, config)


def build_plan(args):
    reference = StubBackend(model_names=tuple(args.models.split(",")))
    config = SweepConfig(
        temperatures=tuple(float(t) for t in args.temperatures.split(",")),
        completions_per_prompt=(args.n,),
        levels=(PromptLevel.LOW,),
        problem_numbers=tuple(range(1, args.problems + 1)),
    )
    return reference, SweepPlanner(reference).plan(config)


def run_fleet(args, shards, lease_jobs):
    """Two workers (one slow, one fast) drain one coordinator; returns
    (wall seconds, merged result)."""
    coordinator = ShardCoordinator(
        shards, lease_seconds=300, lease_jobs=lease_jobs
    )
    app = ServiceApp(Session(backend="stub"), coordinator=coordinator)
    model_names = tuple(args.models.split(","))

    def worker(latency, name):
        run_worker(
            transport=in_process_transport(app),
            session=Session(
                backend=LatencyStub(latency, model_names=model_names)
            ),
            worker_id=name,
            poll_seconds=0.01,
            max_idle_polls=2000,
        )

    threads = [
        threading.Thread(
            target=worker, args=(args.slow_latency, "straggler")
        ),
        threading.Thread(target=worker, args=(args.fast_latency, "fast")),
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return elapsed, coordinator.result()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--models", default="stub-a,stub-b",
                        help="comma-separated stub variant names")
    parser.add_argument("--problems", type=int, default=6,
                        help="benchmark problems per model (1..N)")
    parser.add_argument("--temperatures", default="0.1,0.5")
    parser.add_argument("--n", type=int, default=1)
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for the shard-level run")
    parser.add_argument("--lease-jobs", type=int, default=2,
                        help="job-range size for the job-level run")
    parser.add_argument("--slow-latency", type=float, default=0.05,
                        help="injected seconds per request on the straggler")
    parser.add_argument("--fast-latency", type=float, default=0.002,
                        help="injected seconds per request on the fast worker")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless shard/job wall-clock >= this factor")
    args = parser.parse_args(argv)

    reference, plan = build_plan(args)
    serial = SweepExecutor(reference).run(plan)
    shards = ShardPlanner(args.shards).split(plan)
    print(
        f"{len(plan.jobs)} jobs, straggler {args.slow_latency * 1000:.0f}ms"
        f"/req vs fast {args.fast_latency * 1000:.0f}ms/req; "
        f"{args.shards} shards vs lease_jobs={args.lease_jobs}"
    )

    shard_time, shard_result = run_fleet(args, shards, lease_jobs=None)
    print(f"  shard-level: {shard_time:6.2f}s "
          f"({shard_result.stats['shards']} leases)")
    job_time, job_result = run_fleet(args, shards, args.lease_jobs)
    print(f"  job-level:   {job_time:6.2f}s "
          f"({job_result.stats['shards']} leases)")

    for label, result in (("shard", shard_result), ("job", job_result)):
        if result.sweep.records != serial.sweep.records:
            print(f"PARITY FAILURE: {label}-level merge != serial run")
            return 1
    print("record parity: OK (both granularities byte-identical to serial)")

    speedup = shard_time / job_time if job_time else float("inf")
    print(f"job-level vs shard-level: {speedup:5.2f}x faster under one "
          f"straggler")
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{args.min_speedup}x")
        return 1
    if args.min_speedup is not None:
        print(f"OK: speedup {speedup:.2f}x >= {args.min_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
