"""Extension — prompt engineering (the paper's stated future work).

Sec. VI: for Problem 7 "a better prompt might yield a correct result.
This indicates the importance of creating the best prompt, pointing to
prompt engineering as future work."  This benchmark runs that experiment:
targeted hints (phrased as the paper's failure diagnoses) are appended to
the prompts of the three always-failing problems, and the pass rates are
compared plain-vs-hinted with the regular pipeline.
"""

import pytest

from repro.eval import Evaluator, engineered_prompt
from repro.models import GenerationConfig, make_model
from repro.problems import PromptLevel, get_problem

HARD_PROBLEMS = (7, 9, 12)
N = 40


@pytest.fixture(scope="module")
def hint_experiment():
    model = make_model("codegen-16b", fine_tuned=True)
    evaluator = Evaluator()
    config = GenerationConfig(temperature=0.1, n=N)
    results = {}
    for number in HARD_PROBLEMS:
        problem = get_problem(number)
        plain = sum(
            evaluator.evaluate(problem, c.text).passed
            for c in model.generate(problem.prompt(PromptLevel.HIGH), config)
        )
        hinted = sum(
            evaluator.evaluate(problem, c.text).passed
            for c in model.generate(
                engineered_prompt(problem, PromptLevel.HIGH), config
            )
        )
        results[number] = (plain, hinted)
    return results


def test_prompt_engineering_recovers_hard_problems(benchmark, hint_experiment):
    results = benchmark(lambda: hint_experiment)
    print("\nPrompt engineering on the Sec. VI failure problems "
          f"(CodeGen-16B FT, H prompts, n={N}):")
    for number, (plain, hinted) in results.items():
        title = get_problem(number).title
        print(f"  P{number:>2} {title:<32} plain {plain}/{N} -> hinted {hinted}/{N}")

    # problems 7 and 12 never pass un-hinted (paper: 0/540)
    assert results[7][0] == 0
    assert results[12][0] == 0
    # targeted hints recover some passes on each hard problem
    total_hinted = sum(hinted for _, hinted in results.values())
    total_plain = sum(plain for plain, _ in results.values())
    assert total_hinted > total_plain
    assert results[7][1] > 0
    assert results[12][1] > 0
