"""Static-analysis benchmark: gate latency, overhead, and parity.

Three promises from the netlist-analysis PR, priced and gated::

    PYTHONPATH=src python benchmarks/bench_analysis.py
    PYTHONPATH=src python benchmarks/bench_analysis.py \
        --repeats 5 --max-overhead 5.0 --max-loop-ms 100

1. **Loop gate latency** — a completion with a combinational loop is
   rejected at ``stage="analysis"`` in under ``--max-loop-ms``
   milliseconds (default 100), never reaching the simulator's
   iteration limit; in strict mode the same design surfaces as a
   structured :class:`~repro.eval.jobs.JobFailure` with stage, finding
   code, and hierarchical path.
2. **Overhead** — paired analyzed/unanalyzed sweeps over the stub
   workload (``--backend``, default the all-pass canonical stub); the
   analyzer may cost at most ``--max-overhead`` percent of total
   evaluation time (min per-pair ratio, same estimator as
   ``bench_obs_overhead.py``).
3. **Parity** — a 2-way *sharded analyzed* sweep merges to record-exact
   equality with a *serial unanalyzed* sweep: the gate only rejects
   designs simulation would fail anyway, so verdict booleans (the only
   compared fields) never move.

Numbers land in ``BENCH_analysis.json`` next to this script.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api import Session
from repro.eval import Evaluator, SweepConfig
from repro.problems import ALL_PROBLEMS, PromptLevel
from repro.service.sharding import ShardPlanner, merge_shard_results
from repro.verilog import AnalysisError

LEVELS = {"L": PromptLevel.LOW, "M": PromptLevel.MEDIUM,
          "H": PromptLevel.HIGH}

#: a completion for problem 1 (``module simple_wire(input in, output
#: out)``) whose output feeds back through a wire with no register in
#: the cycle — the planted comb loop
LOOP_COMPLETION = """
  wire loop;
  assign loop = out | in;
  assign out = loop & in;
endmodule
"""


def build_config(args) -> SweepConfig:
    return SweepConfig(
        temperatures=tuple(float(t) for t in args.temperatures.split(",")),
        completions_per_prompt=(args.n,),
        levels=tuple(LEVELS[part] for part in args.levels.split(",")),
        problem_numbers=tuple(range(1, args.problems + 1)),
    )


def gate_latency(max_loop_ms: float) -> "tuple[bool, float]":
    """The comb-loop rejection path, timed cold (no evaluator cache)."""
    problem = ALL_PROBLEMS[0]
    evaluator = Evaluator()
    started = time.perf_counter()
    verdict = evaluator.evaluate(problem, LOOP_COMPLETION)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    ok = True
    if verdict.stage != "analysis" or verdict.passed:
        print(f"FAIL: expected stage='analysis', got {verdict.stage!r} "
              f"(passed={verdict.passed})")
        ok = False
    if not any(f.code == "comb-loop" for f in verdict.findings):
        print("FAIL: no comb-loop finding on the planted loop")
        ok = False
    if elapsed_ms > max_loop_ms:
        print(f"FAIL: analysis gate took {elapsed_ms:.1f} ms > "
              f"{max_loop_ms:.0f} ms budget")
        ok = False

    # strict mode: the same defect as a structured job failure
    from repro.eval.jobs import failure_from_exception

    strict = Evaluator(strict_analysis=True)
    try:
        strict.evaluate(problem, LOOP_COMPLETION)
        print("FAIL: strict evaluator did not raise AnalysisError")
        ok = False
    except AnalysisError as exc:
        failure = failure_from_exception(exc)
        if (failure.stage, failure.code) != ("analysis", "comb-loop") \
                or not failure.path:
            print(f"FAIL: JobFailure not structured: stage="
                  f"{failure.stage!r} code={failure.code!r} "
                  f"path={failure.path!r}")
            ok = False
    if ok:
        print(f"loop gate: OK ({elapsed_ms:.1f} ms, stage=analysis, "
              f"code=comb-loop)")
    return ok, elapsed_ms


def run_once(config, backend: str, analysis: bool):
    """One full sweep on a fresh session (no cache carryover)."""
    session = Session(backend=backend, analysis=analysis)
    started = time.perf_counter()
    result = session.run_plan(session.plan(config))
    return time.perf_counter() - started, result


def measure_overhead(repeats: int, config, backend: str):
    """Paired unanalyzed/analyzed runs; min per-pair ratio wins (the
    least noise-contaminated pair — see bench_obs_overhead.py)."""
    bare_best = analyzed_best = None
    bare_result = analyzed_result = None
    ratios = []
    for _ in range(repeats):
        bare, bare_result = run_once(config, backend, analysis=False)
        analyzed, analyzed_result = run_once(config, backend,
                                             analysis=True)
        bare_best = bare if bare_best is None else min(bare_best, bare)
        analyzed_best = (
            analyzed if analyzed_best is None
            else min(analyzed_best, analyzed)
        )
        ratios.append(analyzed / bare)
    ratios.sort()
    return bare_best, bare_result, analyzed_best, analyzed_result, ratios


def check_parity(config) -> bool:
    """Sharded analyzed sweep == serial unanalyzed sweep, record-exact.

    Always on the model zoo: its workload mixes passes, parse errors,
    bench failures and runaway designs — the mix where an over-eager
    gate would actually move a verdict.
    """
    _, serial = run_once(config, "zoo", analysis=False)
    session = Session(backend="zoo", analysis=True)
    plan = session.plan(config)
    shards = ShardPlanner(2).split(plan)
    results = [session.run_plan(shard.plan) for shard in shards]
    merged = merge_shard_results(shards, results)
    if merged.sweep.records != serial.sweep.records:
        print("PARITY FAILURE: sharded analyzed != serial unanalyzed")
        return False
    print("record parity: OK (analysis gate is verdict-preserving)")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--problems", type=int, default=8,
                        help="benchmark problems per model (1..N)")
    parser.add_argument("--temperatures", default="0.1,0.5")
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--levels", default="M")
    parser.add_argument("--repeats", type=int, default=3,
                        help="paired runs per variant; min ratio wins")
    parser.add_argument("--backend", default="stub-canonical",
                        help="overhead-workload backend (default: "
                             "stub-canonical, the all-pass stub; try "
                             "'zoo' for a failure-heavy mix)")
    parser.add_argument("--max-overhead", type=float, default=5.0,
                        help="fail when the analyzed run is more than "
                             "this percent slower (default: 5.0)")
    parser.add_argument("--max-loop-ms", type=float, default=100.0,
                        help="comb-loop rejection latency budget in ms")
    parser.add_argument("--output", default=None,
                        help="artifact path (default: BENCH_analysis.json "
                             "next to this script)")
    args = parser.parse_args(argv)

    gate_ok, loop_ms = gate_latency(args.max_loop_ms)

    config = build_config(args)
    bare_seconds, bare_result, analyzed_seconds, _, ratios = (
        measure_overhead(args.repeats, config, args.backend)
    )
    parity_ok = check_parity(config)

    overhead_pct = (ratios[0] - 1.0) * 100.0
    mid = len(ratios) // 2
    median_ratio = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    jobs = len(bare_result.sweep.records)
    print(f"{jobs} records/run, {args.repeats} paired repeats:")
    print(f"  unanalyzed: {bare_seconds * 1000:8.1f} ms (best)")
    print(f"  analyzed:   {analyzed_seconds * 1000:8.1f} ms (best)")
    print(f"  overhead: {overhead_pct:+.2f}% (best pair; median "
          f"{(median_ratio - 1.0) * 100.0:+.2f}%)")

    output = args.output or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_analysis.json"
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "records": jobs,
                "repeats": args.repeats,
                "backend": args.backend,
                "loop_gate_ms": round(loop_ms, 3),
                "max_loop_ms": args.max_loop_ms,
                "bare_seconds": round(bare_seconds, 6),
                "analyzed_seconds": round(analyzed_seconds, 6),
                "pair_ratios": [round(r, 6) for r in ratios],
                "median_pair_ratio": round(median_ratio, 6),
                "overhead_pct": round(overhead_pct, 3),
                "max_overhead_pct": args.max_overhead,
                "parity": parity_ok,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"-- wrote {output}")

    if not gate_ok or not parity_ok:
        return 1
    if overhead_pct > args.max_overhead:
        print(f"FAIL: overhead {overhead_pct:.2f}% > "
              f"{args.max_overhead:.1f}% budget")
        return 1
    print(f"OK: overhead {overhead_pct:.2f}% <= "
          f"{args.max_overhead:.1f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
