"""Observability overhead benchmark: traced vs untraced sweep wall-clock.

The :mod:`repro.obs` layer promises to be effectively free: stage
timers feed the metrics registry unconditionally (one histogram update
per stage), and spans only materialize when a trace sink is installed.
This script prices that promise.  It runs the same sweep plan twice —
once bare, once under a :class:`~repro.obs.TraceWriter` capturing every
job/stage/repair span to an NDJSON file — taking the min over several
repeats of each, and reports the relative overhead::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --repeats 5 --max-overhead 5.0

Both runs must produce record-for-record identical results (tracing is
observational; the parity invariant holds with a sink installed).  The
numbers land in ``BENCH_obs.json`` next to this script; ``--max-overhead
P`` (default 5.0) exits non-zero when the traced run is more than P%
slower than the bare one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.api import Session
from repro.eval import SweepConfig
from repro.obs import load_trace
from repro.problems import PromptLevel

LEVELS = {"L": PromptLevel.LOW, "M": PromptLevel.MEDIUM,
          "H": PromptLevel.HIGH}


def build_config(args) -> SweepConfig:
    return SweepConfig(
        temperatures=tuple(float(t) for t in args.temperatures.split(",")),
        completions_per_prompt=(args.n,),
        levels=tuple(LEVELS[part] for part in args.levels.split(",")),
        problem_numbers=tuple(range(1, args.problems + 1)),
    )


def run_once(config, repair_budget: int, trace_path: "str | None"):
    """One full sweep on a fresh session (no evaluator-cache carryover
    between runs); returns (wall seconds, SweepResult)."""
    session = Session(backend="zoo", repair_budget=repair_budget)
    plan = session.plan(config)
    if trace_path is None:
        started = time.perf_counter()
        result = session.run_plan(plan)
        return time.perf_counter() - started, result
    from repro.obs import TraceWriter

    started = time.perf_counter()
    with TraceWriter(trace_path):
        result = session.run_plan(plan)
    return time.perf_counter() - started, result


def measure(repeats: int, config, repair_budget: int, trace_path):
    """Paired bare/traced runs.

    Each repeat runs the two variants back to back, so machine-speed
    drift over the benchmark cancels *within* a pair.  Scheduler noise
    on shared runners dwarfs the true overhead and only ever *slows* a
    run, so the gated estimate is the **minimum** per-pair ratio — the
    least noise-contaminated pair — with the median reported alongside.
    Returns (bare_best, bare_result, traced_best, traced_result,
    sorted ratios).
    """
    bare_best = traced_best = None
    bare_result = traced_result = None
    ratios = []
    for _ in range(repeats):
        bare, bare_result = run_once(config, repair_budget, None)
        traced, traced_result = run_once(config, repair_budget, trace_path)
        bare_best = bare if bare_best is None else min(bare_best, bare)
        traced_best = (
            traced if traced_best is None else min(traced_best, traced)
        )
        ratios.append(traced / bare)
    ratios.sort()
    return bare_best, bare_result, traced_best, traced_result, ratios


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--problems", type=int, default=8,
                        help="benchmark problems per model (1..N)")
    parser.add_argument("--temperatures", default="0.1,0.5")
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--levels", default="M")
    parser.add_argument("--repair-budget", type=int, default=1,
                        help="repair rounds per failing sample (exercises "
                             "the repair-span path too)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per variant; min wall-clock wins")
    parser.add_argument("--max-overhead", type=float, default=5.0,
                        help="fail when the traced run is more than this "
                             "percent slower (default: 5.0)")
    parser.add_argument("--output", default=None,
                        help="artifact path (default: BENCH_obs.json "
                             "next to this script)")
    args = parser.parse_args(argv)

    config = build_config(args)
    trace_path = os.path.join(tempfile.mkdtemp(), "bench_obs.ndjson")

    bare_seconds, bare_result, traced_seconds, traced_result, ratios = (
        measure(args.repeats, config, args.repair_budget, trace_path)
    )
    spans = sum(
        1 for frame in load_trace(trace_path) if frame["type"] == "span"
    )

    if traced_result.sweep.records != bare_result.sweep.records:
        print("PARITY FAILURE: traced sweep != bare sweep")
        return 1
    print("record parity: OK (tracing is observational)")

    mid = len(ratios) // 2
    median_ratio = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    overhead_pct = (ratios[0] - 1.0) * 100.0
    jobs = len(bare_result.sweep.records)
    print(f"{jobs} records/run, {spans} spans captured, "
          f"{args.repeats} paired repeats:")
    print(f"  bare:   {bare_seconds * 1000:8.1f} ms (best)")
    print(f"  traced: {traced_seconds * 1000:8.1f} ms (best)")
    print(f"  overhead: {overhead_pct:+.2f}% (best pair; median "
          f"{(median_ratio - 1.0) * 100.0:+.2f}%)")

    output = args.output or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_obs.json"
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "records": jobs,
                "spans": spans,
                "repeats": args.repeats,
                "bare_seconds": round(bare_seconds, 6),
                "traced_seconds": round(traced_seconds, 6),
                "pair_ratios": [round(r, 6) for r in ratios],
                "median_pair_ratio": round(median_ratio, 6),
                "overhead_pct": round(overhead_pct, 3),
                "max_overhead_pct": args.max_overhead,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"-- wrote {output}")

    if overhead_pct > args.max_overhead:
        print(f"FAIL: overhead {overhead_pct:.2f}% > "
              f"{args.max_overhead:.1f}% budget")
        return 1
    print(f"OK: overhead {overhead_pct:.2f}% <= "
          f"{args.max_overhead:.1f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
