"""Headline aggregates (Sec. VI / VII of the paper).

Regenerates the summary statistics and checks all of them against the
published values:

* only 11.9% of pre-trained completions compiled vs 64.6% fine-tuned;
* functional correctness rises from 1.09% (PT) to 27.0% (FT);
* fine-tuned CodeGen-16B: 41.9% overall, beating code-davinci-002's 35.4%.
"""

import pytest

from repro.eval import headline_numbers, render_headline


def test_headline_numbers(benchmark, full_sweep):
    headline = benchmark(headline_numbers, full_sweep)
    print("\n" + render_headline(headline))

    reference = headline.paper_reference
    assert headline.pt_compile_mean == pytest.approx(
        reference["pt_compile_mean"], abs=0.05
    )
    assert headline.ft_compile_mean == pytest.approx(
        reference["ft_compile_mean"], abs=0.06
    )
    assert headline.pt_functional_mean == pytest.approx(
        reference["pt_functional_mean"], abs=0.02
    )
    assert headline.ft_functional_mean == pytest.approx(
        reference["ft_functional_mean"], abs=0.05
    )
    assert headline.best_ft_overall == pytest.approx(
        reference["best_ft_overall"], abs=0.06
    )
    assert headline.codex_overall == pytest.approx(
        reference["codex_overall"], abs=0.06
    )

    # the orderings the paper headlines
    assert headline.ft_compile_mean > 4 * headline.pt_compile_mean
    assert headline.ft_functional_mean > 10 * headline.pt_functional_mean
    assert headline.best_ft_overall > headline.codex_overall
