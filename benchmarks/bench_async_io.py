"""Async executor benchmark: coroutine fan-out vs thread pool on a
latency-bound backend.

The thread and process executors exist for CPU-bound sweeps; real
deployments talk to *remote* model endpoints, where each job spends its
time waiting on the network.  This script injects a fixed per-request
latency into a deterministic stub backend — the sync flavour sleeps on a
thread, the async flavour awaits ``asyncio.sleep`` — and measures three
ways of hiding that latency on the same plan:

* ``thread``      — SweepExecutor with a pool of --workers threads;
* ``async``       — AsyncSweepExecutor at the same in-flight bound
  (apples-to-apples: both overlap --workers requests, so the async
  run must match the thread run to within scheduling noise);
* ``async-wide``  — AsyncSweepExecutor with every job in flight at
  once, the concurrency a thread-per-request design cannot afford:
  this is where the asyncio transport pays off.

All three must agree record-for-record with a serial run (the parity
invariant every executor honours).  Run it standalone::

    PYTHONPATH=src python benchmarks/bench_async_io.py
    PYTHONPATH=src python benchmarks/bench_async_io.py \
        --latency 0.05 --workers 4 --min-speedup 2.0

``--min-speedup X`` exits non-zero unless async-wide beats the thread
pool by that factor; ``--tolerance`` bounds how much slower than the
thread pool the same-width async run may be (default 1.5x, generous for
noisy CI machines).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

from repro.backends import StubBackend
from repro.eval import Evaluator, SweepConfig, SweepExecutor, SweepPlanner
from repro.problems import PromptLevel
from repro.service.aio import AsyncBackend, AsyncSweepExecutor


class LatencyStub(StubBackend):
    """Sync stub that blocks the calling thread per request."""

    def __init__(self, latency: float, **kwargs):
        super().__init__(**kwargs)
        self.latency = latency

    def generate(self, model, prompt, config):
        time.sleep(self.latency)
        return super().generate(model, prompt, config)


class AsyncLatencyStub(AsyncBackend):
    """Async stub that awaits the same latency without holding a thread."""

    name = "stub"

    def __init__(self, latency: float, **kwargs):
        self.stub = StubBackend(**kwargs)
        self.latency = latency

    def models(self):
        return self.stub.models()

    def capabilities(self, model):
        return self.stub.capabilities(model)

    async def generate_async(self, model, prompt, config):
        await asyncio.sleep(self.latency)
        return self.stub.generate(model, prompt, config)


def build_plan(args):
    reference = StubBackend(model_names=tuple(args.models.split(",")))
    config = SweepConfig(
        temperatures=tuple(
            float(t) for t in args.temperatures.split(",")
        ),
        completions_per_prompt=(args.n,),
        levels=(PromptLevel.LOW,),
        problem_numbers=tuple(range(1, args.problems + 1)),
    )
    return reference, SweepPlanner(reference).plan(config)


def bench(factory, plan, repeat):
    best = None
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = factory().run(plan)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--models", default="stub-a,stub-b",
                        help="comma-separated stub variant names")
    parser.add_argument("--problems", type=int, default=8,
                        help="benchmark problems per model (1..N)")
    parser.add_argument("--temperatures", default="0.1,0.5")
    parser.add_argument("--n", type=int, default=2)
    parser.add_argument("--latency", type=float, default=0.02,
                        help="injected seconds per generation request")
    parser.add_argument("--workers", type=int, default=8,
                        help="thread-pool width == same-width async bound")
    parser.add_argument("--repeat", type=int, default=1,
                        help="runs per executor; best time wins")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="same-width async may be at most this factor "
                             "slower than the thread pool")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless async-wide/thread >= this factor")
    args = parser.parse_args(argv)

    reference, plan = build_plan(args)
    wide = max(len(plan.jobs), 1)
    print(
        f"{len(plan.jobs)} jobs ({plan.completions_planned} completions), "
        f"{args.latency * 1000:.0f}ms injected latency, "
        f"{args.workers} workers / {wide} wide"
    )

    model_names = tuple(args.models.split(","))
    executors = (
        ("serial", lambda: SweepExecutor(
            LatencyStub(args.latency, model_names=model_names),
            evaluator=Evaluator())),
        ("thread", lambda: SweepExecutor(
            LatencyStub(args.latency, model_names=model_names),
            evaluator=Evaluator(), workers=args.workers)),
        ("async", lambda: AsyncSweepExecutor(
            AsyncLatencyStub(args.latency, model_names=model_names),
            evaluator=Evaluator(), concurrency=args.workers)),
        ("async-wide", lambda: AsyncSweepExecutor(
            AsyncLatencyStub(args.latency, model_names=model_names),
            evaluator=Evaluator(), concurrency=wide)),
    )
    times = {}
    records = {}
    for label, factory in executors:
        times[label], result = bench(factory, plan, args.repeat)
        records[label] = result.sweep.records
        print(f"  {label:>10}: {times[label]:7.2f}s "
              f"({len(result.sweep)} records)")

    if len({tuple(r) for r in records.values()}) != 1:
        print("PARITY FAILURE: executors disagree on records")
        return 1
    print("record parity: OK (all four executors byte-identical)")

    same_width = times["async"] / times["thread"]
    wide_speedup = times["thread"] / times["async-wide"]
    print(f"async      vs thread: {same_width:5.2f}x the wall-clock "
          f"(same in-flight bound; ~1.0x expected)")
    print(f"async-wide vs thread: {wide_speedup:5.2f}x faster "
          f"({wide} in flight vs {args.workers} threads)")

    if same_width > args.tolerance:
        print(f"FAIL: same-width async took {same_width:.2f}x the thread "
              f"pool (tolerance {args.tolerance}x)")
        return 1
    if args.min_speedup is not None and wide_speedup < args.min_speedup:
        print(f"FAIL: async-wide speedup {wide_speedup:.2f}x < "
              f"required {args.min_speedup}x")
        return 1
    if args.min_speedup is not None:
        print(f"OK: async-wide speedup {wide_speedup:.2f}x >= "
              f"{args.min_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
