"""Fig. 6 (right) — Pass@(scenario*n) across completions per prompt.

Regenerates the n in {1, 10, 25} panel.  Checks the paper's observations:
n=10 is a good setting for all difficulty levels (rates at n=10 are within
noise of n=25), and J1-Large has no n=25 column (its API rejects it).
"""

from repro.eval import fig6_completions, render_series


def test_fig6_completions(benchmark, n_sweep):
    series = benchmark(fig6_completions, n_sweep)
    print("\n" + render_series(
        "Fig. 6 (right) — pass rate vs completions/prompt (best-t)", series
    ))

    # J1 variants have no n=25 data (paper Sec. IV-B)
    for model, curve in series.items():
        if model.startswith("j1-large"):
            assert 25 not in curve, model
        else:
            assert set(curve) == {1, 10, 25}, model

    # n=10 is "good": within noise of n=25 for the strong models
    for model in ("codegen-16b-ft", "codegen-6b-ft", "code-davinci-002-pt"):
        curve = series[model]
        assert abs(curve[10] - curve[25]) < 0.1, model
        assert curve[10] > 0.1, model
