"""Fig. 6 (left) — Pass@(scenario*n) across sampling temperature.

Regenerates the temperature curves for every model variant and checks the
paper's finding: "Pass@(scenario*10) has the highest value for t = 0.1
and degrades exponentially with temperature".
"""

from repro.eval import fig6_temperature, render_series


def test_fig6_temperature(benchmark, full_sweep):
    series = benchmark(fig6_temperature, full_sweep)
    print("\n" + render_series(
        "Fig. 6 (left) — pass rate vs temperature (n=10)", series
    ))

    for model, curve in series.items():
        if max(curve.values()) < 0.02:
            continue  # flat-zero models carry no shape information
        # best at the lowest temperature
        assert curve[0.1] == max(curve.values()), model
        # monotone-ish decay: t=1.0 well below t=0.1
        assert curve[1.0] <= curve[0.1] * 0.55, model

    # decay looks exponential for the strongest model: each recorded step
    # down in temperature loses a roughly constant factor
    strong = series["codegen-16b-ft"]
    ratios = [
        strong[b] / strong[a]
        for a, b in ((0.1, 0.3), (0.3, 0.5), (0.5, 0.7))
        if strong[a] > 0.02
    ]
    assert all(r < 0.9 for r in ratios)
